//! Deterministic fault injection for the serving layer.
//!
//! Chaos testing is only useful when a failing schedule can be
//! *replayed*: every injection decision here is a pure function of a
//! seed, a failpoint name, and a per-failpoint hit counter, so a
//! failure found under `--chaos 42` reproduces under `--chaos 42`.
//! Faults are described by a [`FaultPlan`] and reach the service two
//! ways:
//!
//! * **Backend faults** — wrap any engine in a [`ChaosBackend`], which
//!   consults the plan's `backend.*` failpoints around the inner
//!   engine's `expectation` call: injected errors (surfaced as the
//!   retryable [`QnsError::ExecutionPanicked`]), real panics (contained
//!   by the service's `catch_unwind` harness), injected latency, and
//!   hangs long enough to trip the deadline watchdog.
//! * **Serve-internal faults** — [`install`] a plan process-globally
//!   and the service's own failpoints (`cache.probe`, `refine.advance`)
//!   consult it via [`failpoint`]. While **uninstalled** (the default)
//!   that hook is a single relaxed atomic load — the same zero-overhead
//!   contract as `qns_tnet::profile` — so production serving pays
//!   nothing for the chaos machinery.
//!
//! Every failpoint name used anywhere in this crate must be a string
//! literal declared in [`FAILPOINTS`]; the `qns-lint`
//! `failpoint-registry` rule parses this constant and cross-checks the
//! call sites, exactly as the lock and metric registries are checked.

use qns_api::{Backend, Estimate, ExpectationJob, QnsError};
use rand::SplitMix64;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock}; // qns-lint: allow(lock-registry)
use std::time::Duration;

/// Every failpoint the serving layer may consult, the single reviewable
/// registry the `qns-lint` `failpoint-registry` rule checks call sites
/// against.
///
/// * `backend.error` — [`ChaosBackend`] returns a retryable
///   [`QnsError::ExecutionPanicked`] instead of executing.
/// * `backend.panic` — [`ChaosBackend`] panics mid-execution (the
///   service's `catch_unwind` harness must contain it).
/// * `backend.delay` — [`ChaosBackend`] sleeps before executing
///   (injected latency; stresses timeout margins).
/// * `backend.hang` — [`ChaosBackend`] sleeps a long, bounded time
///   (a hung engine; the deadline watchdog must resolve the handle).
/// * `cache.probe` — the service stalls inside its result-cache probe,
///   widening the dedup/cache race windows.
/// * `refine.advance` — one refinement level fails or runs slow,
///   exercising the EWMA poisoning guard and per-level error paths.
pub const FAILPOINTS: &[&str] = &[
    "backend.error",
    "backend.panic",
    "backend.delay",
    "backend.hang",
    "cache.probe",
    "refine.advance",
];

/// Number of registered failpoints (array sizes below).
const N: usize = FAILPOINTS.len();

/// What a consulted failpoint told the caller to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault this hit; proceed normally.
    None,
    /// The fault fired; apply the site's failure effect (error, panic,
    /// failed level — whatever the failpoint's contract says).
    Trip,
    /// The fault fired as injected latency: sleep this many
    /// microseconds, then proceed normally.
    Sleep(u64),
}

/// One failpoint's configured behavior inside a [`FaultPlan`].
#[derive(Clone, Copy, Debug, Default)]
struct FaultRule {
    /// Firing probability in per-mille (0 = never, 1000 = always).
    per_mille: u32,
    /// When non-zero, a firing injects this much latency instead of a
    /// failure effect.
    delay_micros: u64,
}

/// A seeded, replayable schedule of fault injections.
///
/// The plan is immutable after construction; decisions are made by
/// hashing `(seed, failpoint, hit index)` through SplitMix64, so each
/// failpoint sees a fixed pseudo-random firing sequence independent of
/// thread interleaving — hit *k* of `backend.error` fires (or not)
/// identically on every run with the same seed, no matter which worker
/// gets there.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: [FaultRule; N],
    hits: [AtomicU64; N],
    fired: [AtomicU64; N],
}

/// FNV-1a over the failpoint name, folding the registry string into
/// the per-failpoint hash stream.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// An empty plan (no failpoint ever fires) under `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: [FaultRule::default(); N],
            hits: [(); N].map(|()| AtomicU64::new(0)),
            fired: [(); N].map(|()| AtomicU64::new(0)),
        }
    }

    /// The seed this plan replays under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn index_of(name: &str) -> usize {
        FAILPOINTS
            .iter()
            .position(|&f| f == name)
            .unwrap_or_else(|| {
                // qns-lint: allow(panic)
                panic!("failpoint `{name}` is not declared in qns_serve::faults::FAILPOINTS")
            })
    }

    /// Configures `name` to fire a failure effect with probability
    /// `per_mille`/1000 per hit.
    #[must_use]
    pub fn with_error(mut self, name: &str, per_mille: u32) -> FaultPlan {
        self.rules[Self::index_of(name)] = FaultRule {
            per_mille,
            delay_micros: 0,
        };
        self
    }

    /// Configures `name` to inject `delay_micros` of latency with
    /// probability `per_mille`/1000 per hit.
    #[must_use]
    pub fn with_delay(mut self, name: &str, per_mille: u32, delay_micros: u64) -> FaultPlan {
        self.rules[Self::index_of(name)] = FaultRule {
            per_mille,
            delay_micros: delay_micros.max(1),
        };
        self
    }

    /// Consults failpoint `name`: advances its hit counter and returns
    /// the (deterministic) action for this hit.
    ///
    /// Call sites in serve code must pass the name as a string literal
    /// declared in [`FAILPOINTS`] — enforced by `qns-lint`.
    pub fn failpoint(&self, name: &str) -> FaultAction {
        let idx = Self::index_of(name);
        let rule = self.rules[idx];
        let hit = self.hits[idx].fetch_add(1, Ordering::Relaxed);
        if rule.per_mille == 0 {
            return FaultAction::None;
        }
        let mut mix =
            SplitMix64::new(self.seed ^ fnv1a(name) ^ hit.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if mix.next_u64() % 1000 >= u64::from(rule.per_mille) {
            return FaultAction::None;
        }
        self.fired[idx].fetch_add(1, Ordering::Relaxed);
        if rule.delay_micros > 0 {
            FaultAction::Sleep(rule.delay_micros)
        } else {
            FaultAction::Trip
        }
    }

    /// Times failpoint `name` was consulted.
    pub fn hits(&self, name: &str) -> u64 {
        self.hits[Self::index_of(name)].load(Ordering::Relaxed)
    }

    /// Times failpoint `name` actually fired.
    pub fn fired(&self, name: &str) -> u64 {
        self.fired[Self::index_of(name)].load(Ordering::Relaxed)
    }

    /// Total firings across all failpoints.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|f| f.load(Ordering::Relaxed)).sum()
    }
}

/// Fast-path switch for the process-global plan: checked (relaxed) at
/// every serve-internal failpoint before anything else, so the
/// uninstalled cost is one atomic load.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed plan. A raw std lock, not an `OrderedMutex`: it is
/// never acquired while any serve lock is held on the fast path (the
/// relaxed load short-circuits first), and chaos installation is a
/// test/bench harness concern outside the serve lock order.
// qns-lint: allow(lock-registry)
static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);

/// Installs `plan` as the process-global fault plan consulted by the
/// service's internal failpoints until [`uninstall`] (last install
/// wins). Backend faults do not need this: wrap engines in
/// [`ChaosBackend`] instead.
pub fn install(plan: Arc<FaultPlan>) {
    *PLAN.write().unwrap_or_else(PoisonError::into_inner) = Some(plan);
    ENABLED.store(true, Ordering::Release);
}

/// Removes the process-global plan; all internal failpoints return to
/// the single-relaxed-load no-op path.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    *PLAN.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether a process-global plan is installed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Consults the process-global plan's failpoint `name`;
/// [`FaultAction::None`] when no plan is installed.
pub fn failpoint(name: &str) -> FaultAction {
    if !ENABLED.load(Ordering::Relaxed) {
        return FaultAction::None;
    }
    let guard = PLAN.read().unwrap_or_else(PoisonError::into_inner);
    match guard.as_ref() {
        Some(plan) => plan.failpoint(name), // qns-lint: allow(failpoint-registry)
        None => FaultAction::None,
    }
}

/// Sleeps out an injected-latency action; no-op for the others.
/// Returns `true` when the action was a failure trip the caller must
/// now apply.
pub(crate) fn apply_delay(action: FaultAction) -> bool {
    match action {
        FaultAction::None => false,
        FaultAction::Trip => true,
        FaultAction::Sleep(micros) => {
            std::thread::sleep(Duration::from_micros(micros));
            false
        }
    }
}

/// A [`Backend`] wrapper that injects the plan's `backend.*` faults
/// around the inner engine.
///
/// The wrapper is transparent for routing: `name`, `supports`,
/// `cost_hint` and `tolerance` all delegate, so the router costs and
/// filters the chaos-wrapped engine exactly like the real one.
pub struct ChaosBackend<B> {
    inner: B,
    plan: Arc<FaultPlan>,
}

impl<B: Backend> ChaosBackend<B> {
    /// Wraps `inner`, consulting `plan` on every execution.
    pub fn new(inner: B, plan: Arc<FaultPlan>) -> ChaosBackend<B> {
        ChaosBackend { inner, plan }
    }

    /// The shared plan this wrapper consults.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl<B: Backend> Backend for ChaosBackend<B> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn expectation(&self, job: &ExpectationJob<'_>) -> Result<Estimate, QnsError> {
        // Latency first (delay, then hang), so a plan combining delay
        // and error observes the slow-then-fail ordering a real
        // degrading engine exhibits.
        apply_delay(self.plan.failpoint("backend.delay"));
        apply_delay(self.plan.failpoint("backend.hang"));
        if apply_delay(self.plan.failpoint("backend.error")) {
            return Err(QnsError::ExecutionPanicked {
                reason: format!("injected fault: backend.error on `{}`", self.inner.name()),
            });
        }
        if apply_delay(self.plan.failpoint("backend.panic")) {
            // An injected engine crash: must be contained by the
            // service's catch_unwind harness like any real panic.
            panic!("injected fault: backend.panic on `{}`", self.inner.name()); // qns-lint: allow(panic)
        }
        self.inner.expectation(job)
    }

    fn supports(&self, job: &ExpectationJob<'_>) -> Result<(), QnsError> {
        self.inner.supports(job)
    }

    fn cost_hint(&self, job: &ExpectationJob<'_>) -> Option<u128> {
        self.inner.cost_hint(job)
    }

    fn tolerance(&self) -> f64 {
        self.inner.tolerance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(plan: &FaultPlan, name: &str, hits: usize) -> Vec<FaultAction> {
        (0..hits).map(|_| plan.failpoint(name)).collect()
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let a = FaultPlan::new(42).with_error("backend.error", 300);
        let b = FaultPlan::new(42).with_error("backend.error", 300);
        assert_eq!(
            decisions(&a, "backend.error", 200),
            decisions(&b, "backend.error", 200)
        );
        assert!(a.fired("backend.error") > 0, "p=0.3 over 200 hits fires");
        assert_eq!(a.fired("backend.error"), b.fired("backend.error"));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(1).with_error("backend.error", 500);
        let b = FaultPlan::new(2).with_error("backend.error", 500);
        assert_ne!(
            decisions(&a, "backend.error", 128),
            decisions(&b, "backend.error", 128),
            "seeds 1 and 2 agree on 128 coin flips — hash is broken"
        );
    }

    #[test]
    fn failpoints_are_independent_streams() {
        let plan = FaultPlan::new(7)
            .with_error("backend.error", 500)
            .with_error("backend.panic", 500);
        // Interleaving consultations of one failpoint must not disturb
        // the other's sequence.
        let solo = FaultPlan::new(7).with_error("backend.error", 500);
        let expected = decisions(&solo, "backend.error", 64);
        let mut got = Vec::new();
        for _ in 0..64 {
            got.push(plan.failpoint("backend.error"));
            let _ = plan.failpoint("backend.panic");
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn unconfigured_failpoints_never_fire() {
        let plan = FaultPlan::new(9);
        for _ in 0..64 {
            assert_eq!(plan.failpoint("cache.probe"), FaultAction::None);
        }
        assert_eq!(plan.hits("cache.probe"), 64);
        assert_eq!(plan.total_fired(), 0);
    }

    #[test]
    fn delay_rules_yield_sleep_actions() {
        let plan = FaultPlan::new(3).with_delay("backend.delay", 1000, 5);
        assert_eq!(plan.failpoint("backend.delay"), FaultAction::Sleep(5));
    }

    #[test]
    fn global_hook_is_inert_until_installed() {
        // Note: global-state tests elsewhere serialize on a lock; this
        // one only asserts the uninstalled default.
        if !is_enabled() {
            assert_eq!(failpoint("cache.probe"), FaultAction::None);
        }
    }

    #[test]
    fn chaos_backend_delegates_metadata() {
        let plan = Arc::new(FaultPlan::new(1));
        let inner = qns_api::ApproxBackend::level(2);
        let wrapped = ChaosBackend::new(inner.clone(), Arc::clone(&plan));
        assert_eq!(wrapped.name(), inner.name());
        assert_eq!(wrapped.tolerance(), inner.tolerance());
    }
}
