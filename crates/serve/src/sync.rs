//! Ordered, poisoning-tolerant lock primitives and the serve lock
//! registry.
//!
//! Every `Mutex`/`Condvar` in this crate goes through [`OrderedMutex`]
//! and [`OrderedCondvar`], which buy two things over the raw std
//! types:
//!
//! * **Poison recovery** — [`OrderedMutex::lock_or_recover`] recovers
//!   the inner value from a poisoned lock instead of panicking. A
//!   worker that panics while holding a lock (contained by the
//!   service's `catch_unwind` harness) must not cascade
//!   poisoned-lock panics into every handle that later waits on the
//!   same flight; all serve state is counters/queues that stay
//!   internally consistent under panic-at-any-line, so recovery is
//!   safe.
//! * **Dynamic lock-order checking** (debug builds only) — every lock
//!   carries a name from [`LOCK_ORDER`]; acquisitions maintain a
//!   per-thread stack of held names and a global acquired-before
//!   graph over names. Acquiring `b` while holding `a` records the
//!   edge `a → b`; if the reverse path `b → … → a` was ever observed
//!   (on any thread, over the process lifetime), the acquisition
//!   panics with both lock names and the full held stack — turning a
//!   latent lock-inversion deadlock into a deterministic test
//!   failure. Release builds compile the checker out entirely:
//!   `lock_or_recover` is then just `lock` + poison recovery.
//!
//! The static side of the same contract is enforced by `qns-lint`'s
//! `lock-registry` rule: every lock constructed in this crate must
//! name an entry of [`LOCK_ORDER`], so the registry below is the
//! single, reviewable list of serve locks and their intended
//! acquired-before order.
//!
//! **Name = equivalence class.** The checker orders lock *names*, not
//! instances: every `Flight` shares `"flight.slot"`. Two same-named
//! locks must therefore never nest (the checker treats self-nesting
//! as an inversion) — true for every lock below, which are all
//! leaf-per-object or singleton.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// The declared acquired-before order of every lock in `qns-serve`,
/// outermost first. A thread may only acquire locks consistently with
/// one global order; the dynamic checker learns the order actually
/// exercised and panics on any cycle, while this list documents (and
/// names) the intended one:
///
/// 1. `serve.watchdog` — the deadline watchdog's timer table.
///    Outermost: the watchdog thread collects expired entries under it
///    and *releases it* before touching any other lock, and
///    register/deregister sites hold nothing else — but should an
///    expiry path ever need `serve.state`, the declared order already
///    permits it.
/// 2. `serve.state` — the service's single state lock (queue, caches,
///    single-flight table, counters). Held while resolving
///    flights and publishing refine progress on the shutdown paths.
/// 3. `flight.slot` — one per [`crate::JobHandle`] flight; a leaf
///    lock for result publication/wait.
/// 4. `refine.progress` — one per refinement; a leaf lock for the
///    level-update stream.
/// 5. `serve.journal` — the observability event ring. Innermost:
///    lifecycle events are recorded while `serve.state` (and never the
///    other way around), and recording must stay legal from any
///    publication path.
pub const LOCK_ORDER: &[&str] = &[
    "serve.watchdog",
    "serve.state",
    "flight.slot",
    "refine.progress",
    "serve.journal",
];

/// A [`Mutex`] wrapper with a registered name, poison recovery, and
/// (in debug builds) dynamic acquisition-order checking. See the
/// module docs for the protocol.
#[derive(Debug, Default)]
pub struct OrderedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` under the registry entry `name`.
    ///
    /// # Panics
    ///
    /// Debug builds panic when `name` is not in [`LOCK_ORDER`] — the
    /// runtime counterpart of the `qns-lint` `lock-registry` rule.
    pub fn new(name: &'static str, value: T) -> Self {
        debug_assert!(
            LOCK_ORDER.contains(&name),
            "lock name `{name}` is not declared in qns_serve::sync::LOCK_ORDER"
        );
        OrderedMutex {
            name,
            inner: Mutex::new(value),
        }
    }

    /// The registry name this lock was constructed under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, recovering the inner value if a previous
    /// holder panicked (see the module docs for why that is sound
    /// here). In debug builds, first records the acquisition in the
    /// lock-order checker.
    ///
    /// # Panics
    ///
    /// Debug builds panic when this acquisition closes a cycle in the
    /// global acquired-before graph (a lock-order inversion).
    pub fn lock_or_recover(&self) -> OrderedMutexGuard<'_, T> {
        checker::acquire(self.name);
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        OrderedMutexGuard {
            name: self.name,
            guard: Some(guard),
        }
    }
}

/// The guard returned by [`OrderedMutex::lock_or_recover`]; releases
/// the mutex and pops the checker's held-lock stack on drop.
#[derive(Debug)]
pub struct OrderedMutexGuard<'a, T> {
    name: &'static str,
    /// `Some` between acquisition and drop; taken only transiently
    /// inside [`OrderedCondvar::wait`] while the thread is blocked.
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard held") // qns-lint: allow(panic)
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard held") // qns-lint: allow(panic)
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the mutex before popping the held stack, so the
        // checker never claims we hold a lock we have let go of.
        if self.guard.take().is_some() {
            checker::release(self.name);
        }
    }
}

/// A [`Condvar`] companion to [`OrderedMutex`]: waiting pops the
/// held-lock stack while the thread is blocked and re-registers the
/// re-acquisition on wake-up, and poisoning is recovered exactly as in
/// [`OrderedMutex::lock_or_recover`].
#[derive(Debug, Default)]
pub struct OrderedCondvar {
    inner: Condvar,
}

impl OrderedCondvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        OrderedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Atomically releases `guard`'s mutex and blocks until notified;
    /// re-acquires (and re-registers) the lock before returning.
    pub fn wait<'a, T>(&self, mut guard: OrderedMutexGuard<'a, T>) -> OrderedMutexGuard<'a, T> {
        let raw = guard.guard.take().expect("guard held"); // qns-lint: allow(panic)
                                                           // Blocked threads hold nothing: pop before sleeping, re-check
                                                           // and re-push on wake (the wake-up re-acquisition is an
                                                           // acquisition like any other for ordering purposes).
        checker::release(guard.name);
        let raw = self.inner.wait(raw).unwrap_or_else(PoisonError::into_inner);
        checker::acquire(guard.name);
        guard.guard = Some(raw);
        guard
    }

    /// Like [`OrderedCondvar::wait`], but gives up after `timeout`.
    /// Returns the re-acquired guard plus whether the wait timed out
    /// (spurious wake-ups and notifications both report `false`; the
    /// caller re-checks its predicate either way).
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: OrderedMutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (OrderedMutexGuard<'a, T>, bool) {
        let raw = guard.guard.take().expect("guard held"); // qns-lint: allow(panic)
        checker::release(guard.name);
        let (raw, res) = self
            .inner
            .wait_timeout(raw, timeout)
            .map(|(g, t)| (g, t.timed_out()))
            .unwrap_or_else(|poisoned| {
                let (g, t) = poisoned.into_inner();
                (g, t.timed_out())
            });
        checker::acquire(guard.name);
        guard.guard = Some(raw);
        (guard, res)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// The debug-build lock-order checker: a per-thread held stack plus a
/// process-global acquired-before graph over registry names.
#[cfg(debug_assertions)]
mod checker {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex, PoisonError};

    thread_local! {
        /// Names of the locks this thread currently holds, in
        /// acquisition order (innermost last).
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Every acquired-before edge `a → b` observed on any thread.
    /// The checker's own lock is a raw std mutex, not an
    /// [`super::OrderedMutex`] — it must not recurse into itself.
    // qns-lint: allow(lock-registry)
    static EDGES: Mutex<BTreeMap<&'static str, BTreeSet<&'static str>>> =
        Mutex::new(BTreeMap::new());

    /// `true` when `from →* to` already holds in the edge graph.
    fn reaches(
        edges: &BTreeMap<&'static str, BTreeSet<&'static str>>,
        from: &'static str,
        to: &'static str,
    ) -> bool {
        let mut visited = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if !visited.insert(node) {
                continue;
            }
            if let Some(next) = edges.get(node) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Records the intent to acquire `name`, panicking if doing so
    /// while holding the innermost lock would close a cycle in the
    /// acquired-before graph. Runs *before* blocking on the mutex, so
    /// an inversion panics deterministically instead of deadlocking
    /// when the adversarial schedule actually interleaves.
    pub(super) fn acquire(name: &'static str) {
        let innermost = HELD.with(|h| h.borrow().last().copied());
        if let Some(held) = innermost {
            // Only the innermost edge is recorded: transitive order
            // through the rest of the stack is already in the graph
            // from the acquisitions that built the stack.
            let mut edges = EDGES.lock().unwrap_or_else(PoisonError::into_inner);
            if held == name || reaches(&edges, name, held) {
                let stack = HELD.with(|h| h.borrow().clone());
                drop(edges);
                panic!(
                    "lock-order inversion: acquiring `{name}` while holding `{held}` \
                     (full held stack: {stack:?}), but the reverse order \
                     `{name}` → … → `{held}` was previously observed; declared \
                     order is qns_serve::sync::LOCK_ORDER = {:?}",
                    super::LOCK_ORDER
                );
            }
            edges.entry(held).or_default().insert(name);
        }
        HELD.with(|h| h.borrow_mut().push(name));
    }

    /// Pops the most recent acquisition of `name` off the held stack.
    pub(super) fn release(name: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&n| n == name) {
                held.remove(pos);
            }
        });
    }
}

/// Release builds: ordering is not checked, the wrappers are plain
/// poison-recovering locks with zero bookkeeping.
#[cfg(not(debug_assertions))]
mod checker {
    pub(super) fn acquire(_name: &'static str) {}
    pub(super) fn release(_name: &'static str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_or_recover_survives_a_poisoning_panic() {
        let lock = std::sync::Arc::new(OrderedMutex::new("flight.slot", 7u32));
        let poisoner = std::sync::Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let mut g = poisoner.lock_or_recover();
            *g = 8;
            panic!("poison the lock");
        })
        .join();
        // The raw std mutex is now poisoned; recovery still reads the
        // (consistent) value the panicking thread left behind.
        assert_eq!(*lock.lock_or_recover(), 8);
    }

    #[test]
    fn condvar_roundtrip_releases_and_reacquires() {
        let pair = std::sync::Arc::new((
            OrderedMutex::new("serve.state", false),
            OrderedCondvar::new(),
        ));
        let notifier = std::sync::Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*notifier;
            *lock.lock_or_recover() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut g = lock.lock_or_recover();
        while !*g {
            g = cv.wait(g);
        }
        drop(g);
        t.join().expect("notifier");
    }

    /// The seeded-inversion stress test the tentpole requires: one
    /// ordering is established, the inverted acquisition must panic
    /// (in debug builds, where the checker is live) rather than
    /// silently arming a deadlock.
    #[test]
    #[cfg(debug_assertions)]
    fn seeded_lock_inversion_is_caught() {
        let a = OrderedMutex::new("flight.slot", ());
        let b = OrderedMutex::new("refine.progress", ());
        // Establish flight.slot → refine.progress.
        {
            let _ga = a.lock_or_recover();
            let _gb = b.lock_or_recover();
        }
        // The inverted order must be rejected even though no other
        // thread currently holds either lock — the graph remembers.
        let inverted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock_or_recover();
            let _ga = a.lock_or_recover();
        }));
        let err = inverted.expect_err("inverted acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("flight.slot") && msg.contains("refine.progress"),
            "panic message must name both locks: {msg}"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    fn self_nesting_a_lock_name_is_caught() {
        let a = OrderedMutex::new("refine.progress", 0u8);
        let b = OrderedMutex::new("refine.progress", 1u8);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ga = a.lock_or_recover();
            let _gb = b.lock_or_recover();
        }));
        assert!(caught.is_err(), "same-name nesting must be rejected");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn unregistered_lock_names_are_rejected() {
        let res = std::panic::catch_unwind(|| OrderedMutex::new("not.in.registry", ()));
        assert!(res.is_err(), "unregistered names must be rejected");
    }
}
