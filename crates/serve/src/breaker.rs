//! Per-engine circuit breakers for the routing layer.
//!
//! A breaker tracks one engine's recent outcomes in a sliding bit
//! window and walks the classic three-state machine:
//!
//! * **Closed** — requests flow; failures shift into the window. When
//!   the window holds ≥ `max_failures` failure bits, the breaker
//!   *opens*.
//! * **Open** — [`CircuitBreaker::allow`] refuses the engine (the
//!   router skips it) until `cooldown_micros` of service-clock time
//!   has passed, then exactly one caller wins the transition to …
//! * **Half-open** — a single trial request is admitted. Success
//!   closes the breaker (window cleared); failure re-opens it and the
//!   cooldown restarts.
//!
//! The implementation is atomics-only (no locks): `allow` is called
//! inside the router on every submission, and the state machine must
//! stay callable from any thread without joining the serve lock
//! order. Time is a *parameter* (`now_micros` on the service clock),
//! not a clock read, so breakers are deterministic under test and the
//! module stays off the wall clock.
//!
//! State transitions mirror into the observability registry when
//! handles are attached: `qns_serve_breaker_state{backend=…}` carries
//! the numeric state (0 = closed, 1 = half-open, 2 = open; the gauge's
//! high-water mark records whether an engine ever tripped) and
//! `qns_serve_breaker_opens_total{backend=…}` counts open
//! transitions.

use qns_obs::{Counter, Gauge};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The three breaker states, in escalation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// One trial request is probing a cooled-down engine.
    HalfOpen,
    /// The engine is refused until its cooldown elapses.
    Open,
}

impl BreakerState {
    /// The gauge encoding (0 = closed, 1 = half-open, 2 = open).
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

const CLOSED: u8 = 0;
const HALF_OPEN: u8 = 1;
const OPEN: u8 = 2;

/// Tuning for one [`CircuitBreaker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Outcomes remembered in the sliding window (capped at 64 — one
    /// bit per outcome).
    pub window: u32,
    /// Failure bits within the window that trip the breaker open.
    pub max_failures: u32,
    /// Service-clock microseconds an open breaker waits before
    /// admitting a half-open trial.
    pub cooldown_micros: u64,
}

impl Default for BreakerPolicy {
    /// Conservative default: 3 failures among the last 8 outcomes trip
    /// the breaker, trials resume after 50 ms. Only misbehaving
    /// engines ever notice it exists.
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            window: 8,
            max_failures: 3,
            cooldown_micros: 50_000,
        }
    }
}

/// One engine's breaker; see the module docs for the state machine.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: AtomicU8,
    /// Sliding outcome window, newest outcome in bit 0, failure = 1.
    history: AtomicU64,
    /// Service-clock micros of the most recent open transition.
    opened_at: AtomicU64,
    opens: AtomicU64,
    state_gauge: Gauge,
    opens_counter: Counter,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: BreakerPolicy) -> CircuitBreaker {
        CircuitBreaker {
            policy,
            state: AtomicU8::new(CLOSED),
            history: AtomicU64::new(0),
            opened_at: AtomicU64::new(0),
            opens: AtomicU64::new(0),
            state_gauge: Gauge::detached(),
            opens_counter: Counter::detached(),
        }
    }

    /// Mirrors state transitions into registry handles.
    #[must_use]
    pub fn with_metrics(mut self, state_gauge: Gauge, opens_counter: Counter) -> CircuitBreaker {
        self.state_gauge = state_gauge;
        self.opens_counter = opens_counter;
        self
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            HALF_OPEN => BreakerState::HalfOpen,
            OPEN => BreakerState::Open,
            _ => BreakerState::Closed,
        }
    }

    /// Total open transitions over the breaker's lifetime.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    fn window_mask(&self) -> u64 {
        let w = self.policy.window.clamp(1, 64);
        if w == 64 {
            u64::MAX
        } else {
            (1u64 << w) - 1
        }
    }

    fn transition(&self, to: u8) {
        self.state.store(to, Ordering::Release);
        self.state_gauge.set(i64::from(to));
    }

    /// Whether the router may *consider* this engine at service-clock
    /// time `now_micros`. Non-mutating by design: the router probes
    /// every engine while picking the cheapest, and a probe must not
    /// consume the half-open trial slot of an engine that is never
    /// actually selected. The selected engine then calls
    /// [`CircuitBreaker::begin_attempt`], which performs the
    /// open → half-open transition.
    pub fn candidate(&self, now_micros: u64) -> bool {
        match self.state.load(Ordering::Acquire) {
            CLOSED => true,
            OPEN => {
                let opened = self.opened_at.load(Ordering::Acquire);
                now_micros.saturating_sub(opened) >= self.policy.cooldown_micros
            }
            _ => false, // half-open: the trial is already in flight
        }
    }

    /// Marks the start of a request on this engine at service-clock
    /// time `now_micros`. A cooled-down open breaker transitions to
    /// half-open — this request *is* the trial; its outcome (via
    /// [`CircuitBreaker::on_success`] / [`CircuitBreaker::on_failure`])
    /// decides whether the breaker closes or re-opens. All other
    /// states are untouched.
    pub fn begin_attempt(&self, now_micros: u64) {
        if self.state.load(Ordering::Acquire) != OPEN {
            return;
        }
        let opened = self.opened_at.load(Ordering::Acquire);
        if now_micros.saturating_sub(opened) < self.policy.cooldown_micros {
            return;
        }
        // Exactly one caller wins the trial slot; losers proceed as
        // plain requests whose outcomes the open breaker ignores.
        if self
            .state
            .compare_exchange(OPEN, HALF_OPEN, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.state_gauge.set(i64::from(HALF_OPEN));
        }
    }

    /// [`CircuitBreaker::candidate`] and
    /// [`CircuitBreaker::begin_attempt`] fused: admits the request and
    /// claims the half-open trial in one call. Convenient for callers
    /// without a separate consideration phase.
    pub fn allow(&self, now_micros: u64) -> bool {
        match self.state.load(Ordering::Acquire) {
            CLOSED => true,
            OPEN => {
                let opened = self.opened_at.load(Ordering::Acquire);
                if now_micros.saturating_sub(opened) < self.policy.cooldown_micros {
                    return false;
                }
                // Cooldown elapsed: exactly one caller wins the
                // half-open trial slot; the rest keep seeing a
                // not-yet-probed engine.
                let won = self
                    .state
                    .compare_exchange(OPEN, HALF_OPEN, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                if won {
                    self.state_gauge.set(i64::from(HALF_OPEN));
                }
                won
            }
            _ => false, // half-open: the trial is already in flight
        }
    }

    /// Records a successful outcome; closes the breaker from any
    /// state and clears the failure window.
    pub fn on_success(&self) {
        self.history.store(0, Ordering::Relaxed);
        if self.state.load(Ordering::Acquire) != CLOSED {
            self.transition(CLOSED);
        }
    }

    /// Records a failed outcome at service-clock time `now_micros`;
    /// may open the breaker (from closed, via the window threshold) or
    /// re-open it (from a failed half-open trial).
    pub fn on_failure(&self, now_micros: u64) {
        match self.state.load(Ordering::Acquire) {
            HALF_OPEN => self.open(now_micros),
            CLOSED => {
                let mask = self.window_mask();
                let prev = self
                    .history
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                        Some(((h << 1) | 1) & mask)
                    })
                    .unwrap_or(0);
                let failures = (((prev << 1) | 1) & mask).count_ones();
                if failures >= self.policy.max_failures.max(1) {
                    self.open(now_micros);
                }
            }
            _ => {
                // Already open: a straggler failure from a request
                // admitted before the trip; the cooldown stands.
            }
        }
    }

    fn open(&self, now_micros: u64) {
        self.opened_at.store(now_micros, Ordering::Release);
        self.transition(OPEN);
        self.opens.fetch_add(1, Ordering::Relaxed);
        self.opens_counter.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tripped(b: &CircuitBreaker, now: u64, n: u32) {
        for _ in 0..n {
            b.on_failure(now);
        }
    }

    #[test]
    fn opens_after_window_threshold_and_recloses_after_cooldown() {
        let b = CircuitBreaker::new(BreakerPolicy {
            window: 8,
            max_failures: 3,
            cooldown_micros: 100,
        });
        assert!(b.allow(0));
        tripped(&b, 10, 2);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.on_failure(10);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.allow(50), "cooldown not elapsed");
        assert!(b.allow(150), "cooldown elapsed: half-open trial admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(150), "only one trial in flight");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(151));
    }

    #[test]
    fn failed_trial_reopens_and_restarts_cooldown() {
        let b = CircuitBreaker::new(BreakerPolicy {
            window: 4,
            max_failures: 2,
            cooldown_micros: 100,
        });
        tripped(&b, 0, 2);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(120));
        b.on_failure(120);
        assert_eq!(b.state(), BreakerState::Open, "failed trial reopens");
        assert_eq!(b.opens(), 2);
        assert!(!b.allow(200), "cooldown restarted from the trial failure");
        assert!(b.allow(230));
    }

    #[test]
    fn successes_slide_failures_out_of_the_window() {
        let b = CircuitBreaker::new(BreakerPolicy {
            window: 4,
            max_failures: 3,
            cooldown_micros: 100,
        });
        for _ in 0..8 {
            b.on_failure(0);
            b.on_success();
        }
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "interleaved successes keep the window below threshold"
        );
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn candidate_is_non_mutating_and_begin_attempt_claims_the_trial() {
        let b = CircuitBreaker::new(BreakerPolicy {
            window: 4,
            max_failures: 2,
            cooldown_micros: 100,
        });
        tripped(&b, 0, 2);
        assert!(!b.candidate(50), "cooldown not elapsed");
        // Repeated candidacy checks after cooldown never consume the
        // trial slot — the router probes all engines while choosing.
        assert!(b.candidate(150));
        assert!(b.candidate(150));
        assert_eq!(b.state(), BreakerState::Open, "candidate() mutates nothing");
        b.begin_attempt(150);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.candidate(150), "trial in flight: no more candidates");
        // begin_attempt on non-open states is a no-op.
        b.begin_attempt(150);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn metrics_mirror_transitions() {
        let gauge = Gauge::detached();
        let opens = Counter::detached();
        let b = CircuitBreaker::new(BreakerPolicy {
            window: 2,
            max_failures: 1,
            cooldown_micros: 10,
        })
        .with_metrics(gauge.clone(), opens.clone());
        b.on_failure(0);
        assert_eq!(opens.get(), 1);
        assert!(b.allow(20));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(opens.get(), 1);
    }
}
