//! The service's observability spine: one [`qns_obs::Registry`] plus a
//! bounded event journal, with every handle the hot paths need fetched
//! once at construction so steady-state recording is allocation-free.
//!
//! Lifecycle events are recorded into the journal behind the
//! `serve.journal` [`OrderedMutex`] — the innermost lock in
//! [`crate::sync::LOCK_ORDER`], so recording is legal from any point,
//! including while `serve.state` is held (which the submit paths rely
//! on to keep each job's events in pipeline order).

use crate::sync::OrderedMutex;
use qns_core::timing::Stopwatch;
use qns_obs::{Counter, DrainedEvents, EventKind, Gauge, Histogram, Journal, Registry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-backend counter handles (jobs + cumulative busy time).
pub(crate) struct BackendHandles {
    pub(crate) jobs: Counter,
    pub(crate) micros: Counter,
}

/// All observability state of one [`crate::Service`].
pub(crate) struct Obs {
    pub(crate) registry: Arc<Registry>,
    journal: OrderedMutex<Journal>,
    /// Monotone clock all event/window timestamps are read from, so
    /// they share one origin (service construction).
    clock: Stopwatch,
    next_job_id: AtomicU64,
    pub(crate) submitted: Counter,
    pub(crate) executed: Counter,
    pub(crate) dedup_joins: Counter,
    pub(crate) queue_depth: Gauge,
    pub(crate) queue_wait: Histogram,
    pub(crate) e2e: Histogram,
    pub(crate) refinements: Counter,
    pub(crate) refine_from_cache: Counter,
    pub(crate) refine_cancelled: Counter,
    pub(crate) refine_active: Gauge,
    pub(crate) refine_level_micros: Histogram,
    pub(crate) retries: Counter,
    pub(crate) failovers: Counter,
    pub(crate) timeouts: Counter,
    pub(crate) shed: Counter,
    pub(crate) degraded: Counter,
    window_first_submit: Gauge,
    window_last_resolve: Gauge,
    /// One handle pair per engine name, plus the synthetic `refine`
    /// backend. Engine names are fixed at build time, so this map is
    /// complete and never mutated afterwards.
    pub(crate) backends: BTreeMap<&'static str, BackendHandles>,
}

impl Obs {
    pub(crate) fn new<'a>(
        engine_names: impl IntoIterator<Item = &'a &'static str>,
        journal_capacity: usize,
    ) -> Obs {
        let registry = Arc::new(Registry::new());
        let journal = Journal::with_capacity(journal_capacity)
            .with_drop_counter(registry.counter("qns_serve_events_dropped_total"));
        let mut backends = BTreeMap::new();
        for &name in engine_names.into_iter().chain(&["refine"]) {
            backends.insert(
                name,
                BackendHandles {
                    jobs: registry.counter_labeled("qns_serve_backend_jobs_total", name),
                    micros: registry.counter_labeled("qns_serve_backend_micros_total", name),
                },
            );
        }
        Obs {
            submitted: registry.counter("qns_serve_jobs_submitted_total"),
            executed: registry.counter("qns_serve_jobs_executed_total"),
            dedup_joins: registry.counter("qns_serve_dedup_joins_total"),
            queue_depth: registry.gauge("qns_serve_queue_depth"),
            queue_wait: registry.histogram("qns_serve_queue_wait_micros"),
            e2e: registry.histogram("qns_serve_e2e_latency_micros"),
            refinements: registry.counter("qns_serve_refinements_total"),
            refine_from_cache: registry.counter("qns_serve_refine_levels_from_cache_total"),
            refine_cancelled: registry.counter("qns_serve_refine_cancelled_total"),
            refine_active: registry.gauge("qns_serve_refine_active"),
            refine_level_micros: registry.histogram("qns_serve_refine_level_micros"),
            retries: registry.counter("qns_serve_retries_total"),
            failovers: registry.counter("qns_serve_failovers_total"),
            timeouts: registry.counter("qns_serve_timeouts_total"),
            shed: registry.counter("qns_serve_shed_total"),
            degraded: registry.counter("qns_serve_degraded_total"),
            window_first_submit: registry.gauge("qns_serve_window_first_submit_micros"),
            window_last_resolve: registry.gauge("qns_serve_window_last_resolve_micros"),
            backends,
            journal: OrderedMutex::new("serve.journal", journal),
            registry,
            clock: Stopwatch::start(),
            next_job_id: AtomicU64::new(0),
        }
    }

    /// Result-cache counter handles, in (hits, misses, evictions) order.
    pub(crate) fn cache_counters(&self) -> (Counter, Counter, Counter) {
        (
            self.registry.counter("qns_serve_cache_hits_total"),
            self.registry.counter("qns_serve_cache_misses_total"),
            self.registry.counter("qns_serve_cache_evictions_total"),
        )
    }

    /// Partial-sum-cache counter handles, in (hits, misses, evictions)
    /// order.
    pub(crate) fn partial_cache_counters(&self) -> (Counter, Counter, Counter) {
        (
            self.registry.counter("qns_serve_partial_cache_hits_total"),
            self.registry
                .counter("qns_serve_partial_cache_misses_total"),
            self.registry
                .counter("qns_serve_partial_cache_evictions_total"),
        )
    }

    /// Circuit-breaker metric handles for engine `name`, in
    /// (state gauge, opens counter) order. Called once per engine at
    /// service build, so the labeled children exist before any
    /// export — and the breaker transition paths never allocate.
    pub(crate) fn breaker_handles(&self, name: &'static str) -> (Gauge, Counter) {
        (
            self.registry.gauge_labeled("qns_serve_breaker_state", name),
            self.registry
                .counter_labeled("qns_serve_breaker_opens_total", name),
        )
    }

    /// The per-level completion counter for `level` (labels are the
    /// decimal level, so [`crate::ServiceStats`] can parse them back).
    pub(crate) fn refine_level_counter(&self, level: usize) -> Counter {
        let mut buf = [0u8; 20];
        self.registry.counter_labeled(
            "qns_serve_refine_levels_completed_total",
            fmt_usize(level, &mut buf),
        )
    }

    /// Fresh per-submission job id (dense, starting at 0).
    pub(crate) fn job_id(&self) -> u64 {
        self.next_job_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Microseconds since service construction.
    pub(crate) fn now_micros(&self) -> u64 {
        self.clock.elapsed_micros()
    }

    /// Appends one event to the journal (bounded; overflow is counted
    /// into `qns_serve_events_dropped_total`, never silent).
    pub(crate) fn record(&self, job: u64, kind: EventKind) {
        self.journal.lock_or_recover().record(job, kind);
    }

    /// Drains the journal (see [`crate::Service::drain_events`]).
    pub(crate) fn drain_events(&self) -> DrainedEvents {
        self.journal.lock_or_recover().drain()
    }

    /// Latches the submission-window start (first submission wins).
    pub(crate) fn mark_submit(&self, now_micros: u64) {
        self.window_first_submit
            .set_if_unset(i64::try_from(now_micros).unwrap_or(i64::MAX));
    }

    /// Advances the submission-window end to this resolution.
    pub(crate) fn mark_resolve(&self, now_micros: u64) {
        self.window_last_resolve
            .set_max(i64::try_from(now_micros).unwrap_or(i64::MAX));
    }
}

/// Formats `v` into `buf` without allocating (the label for a level
/// counter; levels are tiny, but the buffer covers full `u64` range).
fn fmt_usize(mut v: usize, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // Infallible: the buffer holds only ASCII digits. qns-lint: allow(panic)
    std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_usize_matches_display() {
        let mut buf = [0u8; 20];
        for v in [0usize, 1, 9, 10, 42, 12_345, usize::MAX] {
            assert_eq!(fmt_usize(v, &mut buf), v.to_string());
        }
    }

    #[test]
    fn job_ids_are_dense_and_events_ordered() {
        let obs = Obs::new(&["approx", "dense"], 16);
        assert_eq!(obs.job_id(), 0);
        assert_eq!(obs.job_id(), 1);
        obs.record(0, EventKind::Submitted);
        obs.record(0, EventKind::Resolved { ok: true });
        let drained = obs.drain_events();
        assert_eq!(drained.events.len(), 2);
        assert_eq!(drained.events[0].kind, EventKind::Submitted);
        assert!(obs.backends.contains_key("refine"));
    }
}
