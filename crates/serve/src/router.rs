//! Cost-based routing: which engine runs which job.
//!
//! The router leans on the two hooks every [`Backend`] exposes:
//! [`Backend::supports`] (hard feasibility — the dense engine's qubit
//! cap, the approximation's term budget) and [`Backend::cost_hint`]
//! (a deterministic relative cost model). `Route::Auto` picks the
//! cheapest feasible engine; `Route::Fixed` pins one by name and lets
//! its own feasibility error surface.

use qns_api::{Backend, ExpectationJob, Fingerprint, QnsError};
use std::sync::Arc;

/// A backend shared across the service's worker threads.
pub type SharedBackend = Arc<dyn Backend + Send + Sync>;

/// The routing policy of a submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Pick the cheapest feasible engine by cost model (never an
    /// engine whose [`Backend::supports`] rejects the job).
    Auto,
    /// Pin the engine with this [`Backend::name`] (e.g. `"mpo"`).
    /// Unknown names and infeasible jobs surface as errors on the
    /// job's handle.
    Fixed(&'static str),
}

impl Route {
    /// Folds the route into a job fingerprint to form the service's
    /// cache key: the same job pinned to different engines may
    /// legitimately produce different estimates (approximation levels,
    /// sampling), so each route caches separately.
    pub fn cache_key(&self, fingerprint: Fingerprint) -> u128 {
        match self {
            Route::Auto => fingerprint.mix_str("route/auto").as_u128(),
            Route::Fixed(name) => fingerprint.mix_str("route/fixed").mix_str(name).as_u128(),
        }
    }
}

/// Selects the engine for `job` under `route`, returning its index
/// into `engines`.
///
/// `Route::Auto` keeps only engines whose [`Backend::supports`]
/// accepts the job, orders them by [`Backend::cost_hint`] (engines
/// without a model sort last), and breaks ties by registration order.
/// The selection is fully deterministic.
///
/// # Errors
///
/// [`QnsError::Unsupported`] when no engine can run the job (or a
/// fixed route names an unregistered engine); the fixed engine's own
/// feasibility error when it declines the job.
pub fn route_job(
    engines: &[SharedBackend],
    job: &ExpectationJob<'_>,
    route: Route,
) -> Result<usize, QnsError> {
    route_job_masked(engines, job, route, |_| true)
}

/// [`route_job`] with an availability mask: `Route::Auto` prefers
/// engines for which `allowed(index)` holds (the fault-tolerance layer
/// passes "breaker not open and not already failed for this job").
///
/// The mask is a *preference*, not a veto: if it disqualifies every
/// feasible engine, Auto falls back to the unmasked cheapest feasible
/// one — an open breaker or an exhausted failover list must degrade to
/// "try the best engine anyway", never to an artificial
/// [`QnsError::Unsupported`] for a job the fleet can run.
/// `Route::Fixed` ignores the mask entirely: a pinned engine is pinned
/// through its own breaker, and retries of a fixed route re-run the
/// same engine by design.
///
/// # Errors
///
/// As for [`route_job`].
pub fn route_job_masked(
    engines: &[SharedBackend],
    job: &ExpectationJob<'_>,
    route: Route,
    allowed: impl Fn(usize) -> bool,
) -> Result<usize, QnsError> {
    match route {
        Route::Fixed(name) => {
            let idx = engines
                .iter()
                .position(|e| e.name() == name)
                .ok_or_else(|| QnsError::Unsupported {
                    backend: "serve-router",
                    reason: format!("no engine named `{name}` is registered"),
                })?;
            engines[idx].supports(job)?;
            Ok(idx)
        }
        Route::Auto => {
            let cheapest_feasible = |mask: &dyn Fn(usize) -> bool| {
                engines
                    .iter()
                    .enumerate()
                    .filter(|(i, e)| mask(*i) && e.supports(job).is_ok())
                    // Engines without a cost model are last-resort
                    // candidates.
                    .min_by_key(|(_, e)| e.cost_hint(job).unwrap_or(u128::MAX))
                    .map(|(i, _)| i)
            };
            cheapest_feasible(&|i| allowed(i))
                .or_else(|| cheapest_feasible(&|_| true))
                .ok_or_else(|| QnsError::Unsupported {
                    backend: "serve-router",
                    reason: format!(
                        "none of the {} registered engines supports this job",
                        engines.len()
                    ),
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_api::{ApproxBackend, DensityBackend, Simulation, TnetBackend};
    use qns_circuit::generators::ghz;
    use qns_noise::{channels, NoisyCircuit};

    fn engines() -> Vec<SharedBackend> {
        vec![
            Arc::new(DensityBackend::new()),
            Arc::new(ApproxBackend::level(1)),
            Arc::new(TnetBackend::new()),
        ]
    }

    #[test]
    fn auto_never_selects_an_unsupported_engine() {
        // 16 qubits: beyond the dense cap (12); Auto must route around
        // it even though dense is registered first.
        let noisy = NoisyCircuit::inject_random(ghz(16), &channels::depolarizing(1e-3), 4, 11);
        let job = Simulation::new(&noisy).build().unwrap();
        let engines = engines();
        assert!(
            engines[0].supports(&job).is_err(),
            "premise: dense declines"
        );
        let picked = route_job(&engines, &job, Route::Auto).unwrap();
        assert_ne!(engines[picked].name(), "density");
    }

    #[test]
    fn auto_picks_the_cheapest_feasible_engine() {
        let noisy = NoisyCircuit::inject_random(ghz(6), &channels::depolarizing(1e-3), 8, 11);
        let job = Simulation::new(&noisy).build().unwrap();
        let engines = engines();
        let picked = route_job(&engines, &job, Route::Auto).unwrap();
        let cost = |i: usize| engines[i].cost_hint(&job).unwrap_or(u128::MAX);
        for i in 0..engines.len() {
            assert!(cost(picked) <= cost(i), "{} beat by {}", picked, i);
        }
        // Deterministic: routing twice picks the same engine.
        assert_eq!(picked, route_job(&engines, &job, Route::Auto).unwrap());
    }

    #[test]
    fn fixed_routes_by_name_and_surfaces_feasibility() {
        let noisy = NoisyCircuit::inject_random(ghz(16), &channels::depolarizing(1e-3), 2, 11);
        let job = Simulation::new(&noisy).build().unwrap();
        let engines = engines();

        let idx = route_job(&engines, &job, Route::Fixed("tnet")).unwrap();
        assert_eq!(engines[idx].name(), "tnet");

        // Pinning the infeasible dense engine errors instead of routing
        // around it — Fixed means fixed.
        assert!(matches!(
            route_job(&engines, &job, Route::Fixed("density")),
            Err(QnsError::Unsupported {
                backend: "density",
                ..
            })
        ));

        assert!(matches!(
            route_job(&engines, &job, Route::Fixed("nonesuch")),
            Err(QnsError::Unsupported {
                backend: "serve-router",
                ..
            })
        ));
    }

    #[test]
    fn mask_excludes_engines_but_never_strands_a_feasible_job() {
        let noisy = NoisyCircuit::inject_random(ghz(6), &channels::depolarizing(1e-3), 8, 11);
        let job = Simulation::new(&noisy).build().unwrap();
        let engines = engines();
        let cheapest = route_job(&engines, &job, Route::Auto).unwrap();

        // Excluding the winner re-routes to the next-cheapest engine.
        let second = route_job_masked(&engines, &job, Route::Auto, |i| i != cheapest).unwrap();
        assert_ne!(second, cheapest);

        // Excluding everything falls back to the unmasked winner
        // instead of erroring — the mask is a preference, not a veto.
        let fallback = route_job_masked(&engines, &job, Route::Auto, |_| false).unwrap();
        assert_eq!(fallback, cheapest);

        // Fixed ignores the mask: pinned is pinned.
        let pinned = route_job_masked(&engines, &job, Route::Fixed("tnet"), |_| false).unwrap();
        assert_eq!(engines[pinned].name(), "tnet");
    }

    #[test]
    fn routes_cache_under_distinct_keys() {
        let noisy = NoisyCircuit::noiseless(ghz(3));
        let fp = Simulation::new(&noisy).build().unwrap().fingerprint();
        let auto = Route::Auto.cache_key(fp);
        let fixed = Route::Fixed("mpo").cache_key(fp);
        let fixed2 = Route::Fixed("tdd").cache_key(fp);
        assert_ne!(auto, fixed);
        assert_ne!(fixed, fixed2);
        // …but the keys are stable across calls.
        assert_eq!(auto, Route::Auto.cache_key(fp));
    }
}
