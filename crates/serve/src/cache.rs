//! The LRU result cache.
//!
//! Keys are the 128-bit cache keys the service derives from a job's
//! [`qns_api::Fingerprint`] mixed with its routing policy; values are
//! completed [`Estimate`]s. The implementation favours simplicity and
//! observability over asymptotics: recency is a monotone tick per
//! entry, eviction scans for the minimum tick — `O(capacity)` per
//! eviction, which is noise next to any simulation this workspace
//! runs and keeps the structure a single map.
//!
//! That map is a `BTreeMap` rather than a `HashMap` on purpose: the
//! eviction scan iterates the map, and which entry survives decides
//! which jobs later answer from cache. Recency ticks are unique today,
//! but keeping the iteration key-ordered means the cache's observable
//! behaviour can never silently become hash-order-dependent
//! (`qns-lint`'s `determinism` rule pins this file to that contract).

use qns_api::Estimate;
use qns_obs::Counter;
use std::collections::BTreeMap;

/// Hit/miss/eviction counters of one cache (monotone over its life).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced to make room for newer ones.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hits over total lookups; `0.0` before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A least-recently-used cache of [`Estimate`]s keyed by 128-bit
/// fingerprint-derived keys.
///
/// ```
/// use qns_serve::cache::LruCache;
/// use qns_api::Estimate;
///
/// let mut cache = LruCache::new(2);
/// cache.insert(1, Estimate::exact(0.1, "tnet"));
/// cache.insert(2, Estimate::exact(0.2, "tnet"));
/// cache.get(1);                                  // 1 is now the freshest
/// cache.insert(3, Estimate::exact(0.3, "tnet")); // evicts 2, not 1
/// assert!(cache.get(1).is_some());
/// assert!(cache.get(2).is_none());
/// assert_eq!(cache.counters().evictions, 1);
/// ```
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<u128, (Estimate, u64)>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl LruCache {
    /// A cache holding at most `capacity` entries. Capacity `0` is a
    /// valid "caching disabled" configuration: every lookup misses and
    /// inserts are dropped.
    ///
    /// Counts into detached counters; use
    /// [`with_counters`](Self::with_counters) to export them through a
    /// [`qns_obs::Registry`].
    pub fn new(capacity: usize) -> Self {
        Self::with_counters(
            capacity,
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
        )
    }

    /// A cache whose hit/miss/eviction counts feed the given counter
    /// handles (typically registry-attached, so the cache's behaviour
    /// shows up in metric exports without a separate sync step).
    pub fn with_counters(
        capacity: usize,
        hits: Counter,
        misses: Counter,
        evictions: Counter,
    ) -> Self {
        LruCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            hits,
            misses,
            evictions,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<Estimate> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some((est, tick)) => {
                *tick = self.tick;
                self.hits.inc();
                Some(est.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when the cache is full.
    pub fn insert(&mut self, key: u128, value: Estimate) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Evict the stalest entry (minimum recency tick).
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| *k)
                .expect("cache is non-empty when full");
            self.entries.remove(&oldest);
            self.evictions.inc();
        }
        self.entries.insert(key, (value, self.tick));
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The lifetime hit/miss/eviction counters, as a plain snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(v: f64) -> Estimate {
        Estimate::exact(v, "test")
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut c = LruCache::new(3);
        c.insert(1, est(1.0));
        c.insert(2, est(2.0));
        c.insert(3, est(3.0));
        // Touch 1 and 2; 3 becomes the LRU entry.
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_some());
        c.insert(4, est(4.0));
        assert!(c.get(3).is_none(), "LRU entry must be the one evicted");
        assert!(c.get(1).is_some() && c.get(2).is_some() && c.get(4).is_some());
        assert_eq!(c.counters().evictions, 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1, est(1.0));
        c.insert(2, est(2.0));
        c.insert(2, est(2.5));
        assert_eq!(c.counters().evictions, 0);
        assert_eq!(c.get(2).unwrap().value, 2.5);
        assert!(c.get(1).is_some());
    }

    #[test]
    fn counters_track_hits_misses_and_rate() {
        let mut c = LruCache::new(2);
        assert_eq!(c.counters().hit_rate(), 0.0);
        c.insert(7, est(0.7));
        assert!(c.get(7).is_some());
        assert!(c.get(8).is_none());
        let k = c.counters();
        assert_eq!((k.hits, k.misses), (1, 1));
        assert!((k.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(1, est(1.0));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
        assert_eq!(c.counters().evictions, 0);
    }
}
