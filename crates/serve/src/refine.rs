//! Anytime refinement serving: deadline-aware level selection,
//! streaming refinement handles, and the per-level partial-sum cache.
//!
//! [`crate::Service::submit_refine`] accepts a [`RefineRequest`]
//! (a latency budget expressed as a deadline or a pattern budget),
//! picks the highest level whose *uncached* Theorem-1 pattern cost
//! ([`qns_core::bounds::planned_patterns`]) fits that budget, answers
//! at that level, and keeps escalating the remaining levels on the
//! worker pool — publishing every tightened estimate through the
//! returned [`RefinementHandle`]. Per-level contributions are cached
//! under [`qns_api::partial_sum_key`]-derived keys, so resubmitting
//! the same job resumes from the cached prefix instead of restarting,
//! and already-cached levels are free when the deadline level is
//! chosen.
//!
//! Dropping every user-held handle clone cancels the refinement at the
//! next level boundary (the service stops paying for answers nobody
//! will read); [`RefinementHandle::cancel`] does the same explicitly.

use crate::cache::CacheCounters;
use crate::sync::{OrderedCondvar, OrderedMutex};
use qns_api::{Estimate, PartialEstimate, QnsError};
use qns_obs::Counter;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default patterns-per-second throughput assumed for deadline →
/// pattern-budget conversion before the service has measured a level
/// (the EWMA of observed per-level throughput replaces it after the
/// first fresh level completes). Deliberately conservative: a too-low
/// estimate degrades to a cheaper (faster) first answer, never to a
/// missed deadline.
pub(crate) const DEFAULT_REFINE_RATE_PPS: f64 = 50_000.0;

/// The latency/accuracy contract of one
/// [`submit_refine`](crate::Service::submit_refine) call.
///
/// The first (deadline) answer is served at the highest level whose
/// uncached pattern cost fits the resolved budget; levels beyond it up
/// to `max_level` escalate in the background. With neither a deadline
/// nor a pattern budget the first answer is already the final level.
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RefineRequest {
    /// Wall-clock budget for the first answer, in seconds. Converted
    /// to a pattern budget via the service's measured throughput.
    /// Zero or negative degrades to the cheapest feasible level; `NaN`
    /// is rejected at submission.
    pub deadline_secs: Option<f64>,
    /// Direct pattern budget for the first answer (the deterministic
    /// form of `deadline_secs`; when both are set the tighter wins).
    pub pattern_budget: Option<u128>,
    /// Cap on the final level (clamped to the job's noise count).
    pub max_level: Option<usize>,
}

impl RefineRequest {
    /// A request with no deadline: the first answer is the final level.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy with the wall-clock deadline set.
    pub fn with_deadline_secs(mut self, secs: f64) -> Self {
        self.deadline_secs = Some(secs);
        self
    }

    /// Returns a copy with the pattern budget set.
    pub fn with_pattern_budget(mut self, patterns: u128) -> Self {
        self.pattern_budget = Some(patterns);
        self
    }

    /// Returns a copy with the final-level cap set.
    pub fn with_max_level(mut self, level: usize) -> Self {
        self.max_level = Some(level);
        self
    }

    /// Rejects malformed budgets (a `NaN` deadline has no cheapest
    /// consistent reading, so it is an error rather than a guess).
    pub(crate) fn validate(&self) -> Result<(), QnsError> {
        if self.deadline_secs.is_some_and(f64::is_nan) {
            return Err(QnsError::InvalidJob {
                reason: "refine deadline must not be NaN".into(),
            });
        }
        Ok(())
    }

    /// Resolves the request into a single pattern budget for the first
    /// answer. Negative deadlines clamp to zero (cheapest feasible
    /// level); infinite or absent budgets resolve to "no limit".
    pub(crate) fn resolved_budget(&self, rate_pps: f64) -> u128 {
        let mut budget = self.pattern_budget.unwrap_or(u128::MAX);
        if let Some(deadline) = self.deadline_secs {
            let rate = if rate_pps > 0.0 {
                rate_pps
            } else {
                DEFAULT_REFINE_RATE_PPS
            };
            // `as u128` saturates on overflow/infinity and the NaN case
            // was rejected at validation.
            budget = budget.min((deadline.max(0.0) * rate) as u128);
        }
        budget
    }
}

/// Picks the deadline (first-answer) level: the highest `l ≤
/// final_level` whose cumulative *uncached* pattern cost fits
/// `budget`. Levels `< cached_levels` are free (their contributions
/// resume from the partial-sum cache). Level 0 is the floor — an
/// absurdly small budget degrades to the cheapest feasible answer, it
/// never fails.
pub(crate) fn deadline_level(
    n_sites: usize,
    final_level: usize,
    cached_levels: usize,
    budget: u128,
) -> usize {
    let mut best = 0usize;
    let mut uncached = 0u128;
    for level in 0..=final_level {
        if level >= cached_levels {
            uncached = uncached.saturating_add(qns_core::bounds::level_patterns(n_sites, level));
        }
        if uncached <= budget {
            best = level;
        } else {
            break;
        }
    }
    best
}

/// One cached per-level contribution of a job's pattern sum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelSum {
    /// The level's contribution `T_u` (bitwise well-defined for a
    /// given job + bit-affecting options; see
    /// [`qns_api::partial_sum_key`]).
    pub contribution: f64,
    /// The level's pattern count, revalidated on resume.
    pub patterns: usize,
}

/// LRU cache of per-level partial sums, keyed by
/// [`qns_api::partial_sum_key`]-derived 128-bit keys. Each entry is a
/// contiguous level prefix `T_0 … T_k`; resuming installs the prefix
/// and computes only the new levels.
///
/// Entries live in a `BTreeMap`, not a `HashMap`: the eviction scan
/// iterates the map, and partial sums feed bit-reproducible estimates,
/// so even tie-breaking between equally stale entries must not depend
/// on hash iteration order (`qns-lint`'s `determinism` rule enforces
/// this file-wide).
#[derive(Debug)]
pub(crate) struct PartialSumCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<u128, (Vec<LevelSum>, u64)>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl PartialSumCache {
    #[cfg(test)]
    pub(crate) fn new(capacity: usize) -> Self {
        Self::with_counters(
            capacity,
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
        )
    }

    /// A cache whose hit/miss/eviction counts feed the given (usually
    /// registry-attached) counter handles.
    pub(crate) fn with_counters(
        capacity: usize,
        hits: Counter,
        misses: Counter,
        evictions: Counter,
    ) -> Self {
        PartialSumCache {
            capacity,
            tick: 0,
            entries: BTreeMap::new(),
            hits,
            misses,
            evictions,
        }
    }

    /// Length of the cached level prefix without touching recency or
    /// counters (used at submission to price the deadline level).
    pub(crate) fn peek_len(&self, key: u128) -> usize {
        self.entries.get(&key).map_or(0, |(levels, _)| levels.len())
    }

    /// The cached prefix for `key`, counting a hit when at least one
    /// level resumes and a miss otherwise; refreshes recency.
    pub(crate) fn probe(&mut self, key: u128) -> Vec<LevelSum> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some((levels, tick)) if !levels.is_empty() => {
                *tick = self.tick;
                self.hits.inc();
                levels.clone()
            }
            _ => {
                self.misses.inc();
                Vec::new()
            }
        }
    }

    /// Appends `sum` as level `level` of `key`'s prefix. Out-of-order
    /// records (another worker already extended the prefix, or the
    /// entry was evicted mid-run) are dropped — the cache only ever
    /// holds contiguous prefixes.
    pub(crate) fn record(&mut self, key: u128, level: usize, sum: LevelSum) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((levels, tick)) = self.entries.get_mut(&key) {
            if levels.len() == level {
                levels.push(sum);
            }
            *tick = self.tick;
            return;
        }
        if level != 0 {
            return;
        }
        if self.entries.len() >= self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| *k)
                .expect("cache is non-empty when full");
            self.entries.remove(&oldest);
            self.evictions.inc();
        }
        self.entries.insert(key, (vec![sum], self.tick));
    }

    pub(crate) fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }
}

/// One published refinement step: the raw [`PartialEstimate`] plus its
/// [`Estimate`] form (Theorem-1 bound attached while truncated, exact
/// at the full level) and whether the level resumed from the
/// partial-sum cache.
#[derive(Clone, Debug)]
pub struct RefinementUpdate {
    /// The level-completion snapshot from the evaluator.
    pub partial: PartialEstimate,
    /// The same snapshot as a backend-style estimate.
    pub estimate: Estimate,
    /// `true` when this level was installed from the partial-sum cache
    /// instead of computed.
    pub from_cache: bool,
}

/// Progress state shared between the executing worker and every
/// [`RefinementHandle`] clone.
#[derive(Debug, Default)]
struct RefineProgress {
    /// One update per completed level, in level order (`updates[l]` is
    /// level `l`).
    updates: Vec<RefinementUpdate>,
    /// Set when the refinement stops (final level, cancel, shutdown or
    /// error); no further updates will arrive.
    done: bool,
    /// Terminal error, if the refinement failed outright.
    error: Option<QnsError>,
    /// Whether the stop was a cancellation.
    cancelled: bool,
}

/// The worker/handle rendezvous for one refinement.
#[derive(Debug)]
pub(crate) struct RefineShared {
    progress: OrderedMutex<RefineProgress>,
    advanced: OrderedCondvar,
}

impl Default for RefineShared {
    fn default() -> Self {
        RefineShared {
            progress: OrderedMutex::new("refine.progress", RefineProgress::default()),
            advanced: OrderedCondvar::new(),
        }
    }
}

impl RefineShared {
    /// Publishes one completed level and wakes every waiter.
    pub(crate) fn publish(&self, update: RefinementUpdate) {
        let mut progress = self.progress.lock_or_recover();
        debug_assert_eq!(
            progress.updates.len(),
            update.partial.level,
            "levels publish in order"
        );
        progress.updates.push(update);
        self.advanced.notify_all();
    }

    /// Marks the refinement finished and wakes every waiter. Returns
    /// whether *this* call performed the transition.
    ///
    /// **First finish wins**: the watchdog and the executing worker
    /// may both try to terminate the same refinement (deadline fires
    /// while the worker is mid-level); whichever gets here first sets
    /// the terminal state and later calls are no-ops, so a refinement
    /// finishes exactly once and a timeout verdict is never
    /// overwritten by the worker's eventual "stopped" bookkeeping. The
    /// return value lets the winner alone record terminal counters and
    /// journal events.
    pub(crate) fn finish(&self, error: Option<QnsError>, cancelled: bool) -> bool {
        self.finish_with(error, cancelled, || {})
    }

    /// [`RefineShared::finish`] that runs `bookkeeping` under the
    /// progress lock, after winning but *before* waiters can observe
    /// completion: anyone unblocked by this finish is guaranteed to
    /// also see the winner's counters and journal events (the journal
    /// lock is innermost, so recording here is legal). Losers never
    /// run it.
    pub(crate) fn finish_with(
        &self,
        error: Option<QnsError>,
        cancelled: bool,
        bookkeeping: impl FnOnce(),
    ) -> bool {
        let mut progress = self.progress.lock_or_recover();
        if progress.done {
            return false;
        }
        bookkeeping();
        progress.done = true;
        progress.error = error;
        progress.cancelled = cancelled;
        self.advanced.notify_all();
        true
    }
}

/// Sets the cancel flag when the last user-held handle clone drops, so
/// an abandoned refinement stops consuming workers at the next level
/// boundary. The executing worker holds the flag but not this guard.
#[derive(Debug)]
struct CancelOnDrop {
    cancel: Arc<AtomicBool>,
}

impl Drop for CancelOnDrop {
    fn drop(&mut self) {
        self.cancel.store(true, Ordering::Relaxed);
    }
}

/// A handle to one anytime refinement: a stream of monotonically
/// tightening estimates, one per completed level.
///
/// Clones share the stream; the refinement is cancelled when every
/// clone is dropped (or [`cancel`](Self::cancel) is called).
#[derive(Clone, Debug)]
pub struct RefinementHandle {
    shared: Arc<RefineShared>,
    cancel: Arc<AtomicBool>,
    first_level: usize,
    final_level: usize,
    _guard: Arc<CancelOnDrop>,
}

impl RefinementHandle {
    pub(crate) fn new(
        shared: Arc<RefineShared>,
        cancel: Arc<AtomicBool>,
        first_level: usize,
        final_level: usize,
    ) -> Self {
        let guard = Arc::new(CancelOnDrop {
            cancel: Arc::clone(&cancel),
        });
        RefinementHandle {
            shared,
            cancel,
            first_level,
            final_level,
            _guard: guard,
        }
    }

    /// The deadline level: the level of the first answer
    /// ([`wait_first`](Self::wait_first)), chosen at submission so its
    /// uncached pattern cost fits the request's budget.
    pub fn first_level(&self) -> usize {
        self.first_level
    }

    /// The level at which the refinement stops escalating.
    pub fn final_level(&self) -> usize {
        self.final_level
    }

    /// Blocks until the deadline-level estimate is available — the
    /// "answer within budget" of the request.
    ///
    /// # Errors
    ///
    /// As [`wait_level`](Self::wait_level).
    pub fn wait_first(&self) -> Result<RefinementUpdate, QnsError> {
        self.wait_level(self.first_level)
    }

    /// Blocks until level `level` has completed and returns its update.
    ///
    /// # Errors
    ///
    /// The refinement's terminal error, or [`QnsError::InvalidJob`] if
    /// it stopped (cancelled / shut down / finished) before reaching
    /// `level`.
    pub fn wait_level(&self, level: usize) -> Result<RefinementUpdate, QnsError> {
        let mut progress = self.shared.progress.lock_or_recover();
        loop {
            if let Some(update) = progress.updates.get(level) {
                return Ok(update.clone());
            }
            if progress.done {
                return Err(Self::stop_error(&progress, level));
            }
            progress = self.shared.advanced.wait(progress);
        }
    }

    /// Blocks until the refinement stops and returns the last (most
    /// refined) update — anytime semantics: a cancelled or
    /// shutdown-stopped refinement still returns what it computed, as
    /// long as at least one level completed.
    ///
    /// # Errors
    ///
    /// The terminal error if the refinement failed before completing
    /// any level.
    pub fn wait_final(&self) -> Result<RefinementUpdate, QnsError> {
        let mut progress = self.shared.progress.lock_or_recover();
        while !progress.done {
            progress = self.shared.advanced.wait(progress);
        }
        match progress.updates.last() {
            Some(update) => Ok(update.clone()),
            None => Err(Self::stop_error(&progress, 0)),
        }
    }

    fn stop_error(progress: &RefineProgress, level: usize) -> QnsError {
        if let Some(e) = &progress.error {
            return e.clone();
        }
        QnsError::InvalidJob {
            reason: if progress.cancelled {
                format!("refinement cancelled before level {level}")
            } else {
                format!("refinement stopped before level {level}")
            },
        }
    }

    /// The latest available update without blocking.
    pub fn latest(&self) -> Option<RefinementUpdate> {
        self.shared
            .progress
            .lock_or_recover()
            .updates
            .last()
            .cloned()
    }

    /// Snapshot of every update published so far, in level order.
    pub fn updates(&self) -> Vec<RefinementUpdate> {
        self.shared.progress.lock_or_recover().updates.clone()
    }

    /// `true` once the refinement has stopped (no further updates).
    pub fn is_done(&self) -> bool {
        self.shared.progress.lock_or_recover().done
    }

    /// Requests cancellation: the worker stops escalating at the next
    /// level boundary. Already-published updates stay readable.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_level_degrades_to_zero_and_respects_cached_prefixes() {
        // 4 sites: levels cost 1, 12, 54, 108, 81 patterns.
        assert_eq!(deadline_level(4, 4, 0, 0), 0, "tiny budget → floor");
        assert_eq!(deadline_level(4, 4, 0, 1), 0, "level 1 needs 13");
        assert_eq!(deadline_level(4, 4, 0, 13), 1);
        assert_eq!(deadline_level(4, 4, 0, u128::MAX), 4);
        // Cached levels are free: with T_0..T_1 cached, level 1 costs 0
        // and level 2 only its own 54 patterns.
        assert_eq!(deadline_level(4, 4, 2, 0), 1);
        assert_eq!(deadline_level(4, 4, 2, 54), 2);
        // The final-level cap wins over the budget.
        assert_eq!(deadline_level(4, 2, 0, u128::MAX), 2);
    }

    #[test]
    fn resolved_budget_clamps_and_combines() {
        let rate = 100.0;
        // Negative and zero deadlines clamp to a zero budget.
        assert_eq!(
            RefineRequest::new()
                .with_deadline_secs(-3.0)
                .resolved_budget(rate),
            0
        );
        assert_eq!(
            RefineRequest::new()
                .with_deadline_secs(0.0)
                .resolved_budget(rate),
            0
        );
        // A deadline converts at the given rate.
        assert_eq!(
            RefineRequest::new()
                .with_deadline_secs(2.0)
                .resolved_budget(rate),
            200
        );
        // Infinity saturates instead of panicking.
        assert_eq!(
            RefineRequest::new()
                .with_deadline_secs(f64::INFINITY)
                .resolved_budget(rate),
            u128::MAX
        );
        // Both set: the tighter budget wins.
        let both = RefineRequest::new()
            .with_deadline_secs(2.0)
            .with_pattern_budget(50);
        assert_eq!(both.resolved_budget(rate), 50);
        // No budget at all: unlimited (first answer = final level).
        assert_eq!(RefineRequest::new().resolved_budget(rate), u128::MAX);
        // An uncalibrated (zero) rate falls back to the default.
        assert_eq!(
            RefineRequest::new()
                .with_deadline_secs(1.0)
                .resolved_budget(0.0),
            DEFAULT_REFINE_RATE_PPS as u128
        );
    }

    #[test]
    fn nan_deadlines_are_rejected() {
        let err = RefineRequest::new()
            .with_deadline_secs(f64::NAN)
            .validate()
            .unwrap_err();
        assert!(matches!(err, QnsError::InvalidJob { .. }));
        assert!(RefineRequest::new()
            .with_deadline_secs(0.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn partial_sum_cache_keeps_contiguous_prefixes() {
        let mut cache = PartialSumCache::new(2);
        let sum = |v: f64| LevelSum {
            contribution: v,
            patterns: 1,
        };
        assert_eq!(cache.probe(1), Vec::new());
        cache.record(1, 0, sum(0.5));
        cache.record(1, 1, sum(0.1));
        // A gap is dropped, not stored.
        cache.record(1, 3, sum(9.9));
        assert_eq!(cache.peek_len(1), 2);
        let got = cache.probe(1);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].contribution, 0.5);
        // A fresh key must start at level 0.
        cache.record(2, 1, sum(7.0));
        assert_eq!(cache.peek_len(2), 0);
        // LRU eviction on the third distinct key.
        cache.record(2, 0, sum(2.0));
        cache.probe(1); // keep 1 fresh
        cache.record(3, 0, sum(3.0));
        assert_eq!(cache.peek_len(2), 0, "LRU entry evicted");
        assert_eq!(cache.peek_len(1), 2);
        assert_eq!(cache.counters().evictions, 1);
        assert!(cache.counters().hits >= 2);
        assert!(cache.counters().misses >= 1);
    }

    #[test]
    fn dropping_every_handle_clone_cancels() {
        let shared = Arc::new(RefineShared::default());
        let cancel = Arc::new(AtomicBool::new(false));
        let handle = RefinementHandle::new(Arc::clone(&shared), Arc::clone(&cancel), 0, 2);
        let clone = handle.clone();
        drop(handle);
        assert!(
            !cancel.load(Ordering::Relaxed),
            "a live clone holds the guard"
        );
        drop(clone);
        assert!(cancel.load(Ordering::Relaxed), "last drop cancels");
    }
}
