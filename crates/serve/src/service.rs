//! The concurrent expectation-value service.
//!
//! A [`Service`] owns a pool of worker threads, a bounded submission
//! queue, an LRU result cache and a single-flight table. Submissions
//! go through [`Service::submit`] and come back as [`JobHandle`]s —
//! lightweight futures resolved by whichever worker runs (or whichever
//! cache entry already answers) the job.
//!
//! Concurrency protocol, in submission order under one state lock:
//!
//! 1. **Single-flight join** — an identical (fingerprint + route) job
//!    already queued or running hands back a handle to the *same*
//!    flight: N concurrent submissions of one job cost exactly one
//!    backend execution. Joins happen before (and without) a cache
//!    probe, so they never count against the cache hit rate.
//! 2. **Cache probe** — a completed identical job answers immediately
//!    from the LRU cache.
//! 3. **Enqueue** — otherwise the job registers as the flight owner
//!    and joins the bounded queue (submission blocks while the queue
//!    is at capacity — backpressure, not unbounded memory).
//!
//! A key is never in the single-flight table and the cache at once:
//! workers insert the result and retire the flight under one lock, and
//! a flight only registers after a cache miss.
//!
//! Anytime refinements ([`Service::submit_refine`]) share the same
//! bounded queue and worker pool but deliberately **not** the result
//! cache or single-flight table: a refinement's product is a *stream*
//! of per-level estimates, cached level-by-level in the partial-sum
//! cache under [`qns_api::partial_sum_key`]-derived keys (disjoint
//! from the `route/…` result-cache keys), never as a single
//! [`Estimate`]. See [`crate::refine`] for the deadline/level model.

use crate::breaker::{BreakerPolicy, CircuitBreaker};
use crate::cache::LruCache;
use crate::faults::{self, FaultAction};
use crate::obs::Obs;
use crate::refine::{
    deadline_level, LevelSum, PartialSumCache, RefineRequest, RefineShared, RefinementHandle,
    RefinementUpdate,
};
use crate::router::{route_job_masked, Route, SharedBackend};
use crate::sync::{OrderedCondvar, OrderedMutex, OrderedMutexGuard};
use qns_api::{
    partial_sum_key, ApproxBackend, ApproxOptions, DensityBackend, Estimate, ExpectationJob,
    Fingerprint, InitialState, MpoBackend, Observable, QnsError, Refinement, TddBackend,
    TnetBackend, TrajectoryBackend,
};
use qns_core::timing::time_it;
use qns_noise::NoisyCircuit;
use qns_obs::{DrainedEvents, EventKind, MetricsSnapshot, Registry};
use rand::SplitMix64;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Retry/failover policy for expectation jobs (see
/// [`ServiceBuilder::retry_policy`]). With no policy installed a job
/// gets exactly one attempt — the pre-fault-tolerance behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (clamped to ≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds; doubles per
    /// further retry. `0` retries immediately (no backoff at all).
    pub base_backoff_micros: u64,
    /// Upper bound on the (pre-jitter) backoff.
    pub max_backoff_micros: u64,
    /// Seed for the deterministic backoff jitter: the slept backoff is
    /// a pure function of `(seed, job id, attempt)`, so a chaos
    /// schedule replays timing-for-timing.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 1 ms → 8 ms exponential backoff.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_micros: 1_000,
            max_backoff_micros: 8_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt + 1` of job `job_id`:
    /// exponential in the attempt, capped, with deterministic seeded
    /// jitter in the upper half of the cap (a full-jitter scheme would
    /// allow zero sleeps, which defeats the point of backing off).
    fn backoff_micros(&self, attempt: u32, job_id: u64) -> u64 {
        if self.base_backoff_micros == 0 {
            return 0;
        }
        let exp = self
            .base_backoff_micros
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let capped = exp.min(self.max_backoff_micros.max(self.base_backoff_micros));
        let mut mix = SplitMix64::new(
            self.seed ^ job_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt),
        );
        capped / 2 + mix.next_u64() % (capped / 2 + 1)
    }
}

/// Deadline policy for submitted work (see
/// [`ServiceBuilder::timeout_policy`]). Deadlines scale with the job's
/// routed cost estimate, so a big job is not condemned by a budget
/// tuned for small ones; the watchdog resolves overdue handles with
/// [`QnsError::Timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeoutPolicy {
    /// Deadline floor in microseconds, measured from acceptance
    /// (queue wait counts against the deadline).
    pub base_micros: u64,
    /// Extra deadline microseconds granted per 1000 cost-hint units of
    /// the cheapest feasible engine (pattern units for refinements).
    pub micros_per_kilocost: u64,
    /// How often the watchdog re-scans when no deadline is imminent.
    pub check_interval_micros: u64,
}

impl Default for TimeoutPolicy {
    /// 100 ms floor + 1 µs per 1000 cost units, 5 ms scan interval.
    fn default() -> TimeoutPolicy {
        TimeoutPolicy {
            base_micros: 100_000,
            micros_per_kilocost: 1,
            check_interval_micros: 5_000,
        }
    }
}

impl TimeoutPolicy {
    /// The deadline budget for a job whose cost estimate is `cost`.
    fn budget_micros(&self, cost: u128) -> u64 {
        let scaled = cost.saturating_mul(u128::from(self.micros_per_kilocost)) / 1000;
        self.base_micros
            .saturating_add(u64::try_from(scaled).unwrap_or(u64::MAX))
    }
}

/// Admission-control policy (see
/// [`ServiceBuilder::admission_policy`]). Pressure is
/// `(queue depth + 1) × estimated cost` — a deep queue of cheap jobs
/// and a shallow queue of huge ones rate the same. Refinements degrade
/// (shallower Theorem-1-bounded first level) in the band between the
/// two thresholds and are shed above it; expectation jobs have no
/// level lever, so they are only ever shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Pressure at which refinements start being admitted at a
    /// shallower first level than their budget asked for.
    pub degrade_pressure: u128,
    /// Pressure at which submissions are rejected with
    /// [`QnsError::Overloaded`].
    pub shed_pressure: u128,
}

/// An owned, validated, fingerprinted expectation job — the queueable
/// counterpart of the borrowing [`ExpectationJob`]. The circuit lives
/// behind an [`Arc`], so cloning a spec (the queue does, per
/// submission) is cheap regardless of circuit size.
#[derive(Clone, Debug)]
pub struct JobSpec {
    noisy: Arc<NoisyCircuit>,
    initial: InitialState,
    observable: Observable,
    fingerprint: Fingerprint,
}

impl JobSpec {
    /// Builds and validates a spec; the fingerprint is computed once
    /// here and reused for every submission.
    ///
    /// # Errors
    ///
    /// [`QnsError::SizeMismatch`] exactly as [`ExpectationJob::new`].
    pub fn new(
        noisy: impl Into<Arc<NoisyCircuit>>,
        initial: impl Into<InitialState>,
        observable: impl Into<Observable>,
    ) -> Result<Self, QnsError> {
        let noisy = noisy.into();
        let initial = initial.into();
        let observable = observable.into();
        let fingerprint =
            ExpectationJob::new(&noisy, initial.clone(), observable.clone())?.fingerprint();
        Ok(JobSpec {
            noisy,
            initial,
            observable,
            fingerprint,
        })
    }

    /// The default job on `noisy`: `|0…0⟩` in, `|0…0⟩⟨0…0|` measured.
    pub fn zeros(noisy: impl Into<Arc<NoisyCircuit>>) -> Self {
        let noisy = noisy.into();
        let n = noisy.n_qubits();
        JobSpec::new(noisy, InitialState::zeros(n), Observable::zeros(n))
            .expect("matching qubit counts by construction")
    }

    /// The borrowing [`ExpectationJob`] view backends consume.
    pub fn job(&self) -> ExpectationJob<'_> {
        ExpectationJob::new(&self.noisy, self.initial.clone(), self.observable.clone())
            .expect("spec was validated at construction")
    }

    /// The spec's canonical fingerprint (see
    /// [`ExpectationJob::fingerprint`]).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The noisy circuit the spec runs.
    pub fn noisy(&self) -> &NoisyCircuit {
        &self.noisy
    }
}

/// One in-flight (or resolved) execution shared by every handle that
/// joined it.
#[derive(Debug)]
struct Flight {
    slot: OrderedMutex<Option<Result<Estimate, QnsError>>>,
    done: OrderedCondvar,
}

impl Flight {
    fn pending() -> Arc<Flight> {
        Arc::new(Flight {
            slot: OrderedMutex::new("flight.slot", None),
            done: OrderedCondvar::new(),
        })
    }

    fn resolved(result: Result<Estimate, QnsError>) -> Arc<Flight> {
        Arc::new(Flight {
            slot: OrderedMutex::new("flight.slot", Some(result)),
            done: OrderedCondvar::new(),
        })
    }

    /// Publishes the result unless the flight is already resolved —
    /// **first writer wins**. The executing worker and the deadline
    /// watchdog may race to resolve the same flight (the deadline
    /// fires while the backend is mid-execution); the loser's result
    /// is dropped, so every handle observes exactly one result.
    /// Returns whether this call was the resolving one.
    fn try_fill(&self, result: Result<Estimate, QnsError>) -> bool {
        self.try_fill_with(result, || {})
    }

    /// [`Flight::try_fill`] that runs `bookkeeping` under the slot
    /// lock, after winning but *before* the result becomes observable:
    /// a waiter that sees the resolution is guaranteed to also see the
    /// winner's counters and journal events (the journal lock is
    /// innermost, so recording here is legal). Losers never run it.
    fn try_fill_with(
        &self,
        result: Result<Estimate, QnsError>,
        bookkeeping: impl FnOnce(),
    ) -> bool {
        let mut slot = self.slot.lock_or_recover();
        if slot.is_some() {
            return false;
        }
        bookkeeping();
        *slot = Some(result);
        self.done.notify_all();
        true
    }

    /// [`Flight::try_fill`] for paths with a single possible writer
    /// (submission-side rejections), where losing the race would be a
    /// protocol bug.
    fn fill(&self, result: Result<Estimate, QnsError>) {
        let filled = self.try_fill(result);
        debug_assert!(filled, "a flight resolves exactly once");
    }

    fn wait(&self) -> Result<Estimate, QnsError> {
        let mut slot = self.slot.lock_or_recover();
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot);
        }
    }

    fn try_get(&self) -> Option<Result<Estimate, QnsError>> {
        self.slot.lock_or_recover().clone()
    }
}

/// A handle to one submission's eventual [`Estimate`]. Handles are
/// cheap to clone; every clone (and every deduplicated co-submission)
/// observes the same result.
#[derive(Clone, Debug)]
pub struct JobHandle {
    flight: Arc<Flight>,
}

impl JobHandle {
    /// Blocks until the job completes and returns its result. Multiple
    /// waits return the same (cloned) result.
    ///
    /// # Errors
    ///
    /// Whatever the routed backend (or the router) reported.
    pub fn wait(&self) -> Result<Estimate, QnsError> {
        self.flight.wait()
    }

    /// Non-blocking probe: `None` while the job is still queued or
    /// running.
    pub fn try_get(&self) -> Option<Result<Estimate, QnsError>> {
        self.flight.try_get()
    }
}

/// Per-backend accounting inside [`ServiceStats`].
#[non_exhaustive]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BackendStats {
    /// Jobs this backend executed.
    pub jobs: u64,
    /// Total wall-clock seconds spent in this backend's
    /// `expectation` calls (summed across workers).
    pub seconds: f64,
}

/// A point-in-time snapshot of a [`Service`]'s counters.
#[non_exhaustive]
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Total submissions accepted (including cache hits and joins).
    pub submitted: u64,
    /// Jobs actually executed on a backend — with caching and
    /// single-flight dedup this is the number of *unique* jobs seen.
    pub executed: u64,
    /// Submissions answered straight from the result cache.
    pub cache_hits: u64,
    /// Cache probes that found nothing. Submissions that join an
    /// in-flight execution never probe the cache, so dedup joins do
    /// not deflate [`ServiceStats::cache_hit_rate`].
    pub cache_misses: u64,
    /// Cache entries displaced by newer results.
    pub cache_evictions: u64,
    /// Submissions that joined an already-in-flight identical job
    /// (the single-flight wins that never reached the queue).
    pub dedup_joins: u64,
    /// Deepest the bounded queue ever got.
    pub queue_high_water: usize,
    /// Per-backend job counts and cumulative latencies, keyed by
    /// [`qns_api::Backend::name`] (refinements aggregate under
    /// `"refine"`, with `seconds` counting fresh level computation
    /// only).
    pub per_backend: BTreeMap<&'static str, BackendStats>,
    /// Anytime refinements accepted by [`Service::submit_refine`].
    pub refinements: u64,
    /// Freshly *computed* level completions across all refinements,
    /// keyed by level (cache-installed levels count in
    /// [`ServiceStats::refine_levels_from_cache`] instead).
    pub refine_levels_completed: BTreeMap<usize, u64>,
    /// Levels installed from the partial-sum cache instead of
    /// computed.
    pub refine_levels_from_cache: u64,
    /// Refinements currently queued or escalating — the escalation
    /// queue depth at snapshot time.
    pub refine_active: usize,
    /// Deepest [`ServiceStats::refine_active`] ever got.
    pub refine_high_water: usize,
    /// Refinements stopped by explicit cancel or handle drop.
    pub refine_cancelled: u64,
    /// Partial-sum cache counters: a hit is a refinement that resumed
    /// at least one cached level.
    pub partial_cache: crate::cache::CacheCounters,
    /// Execution attempts beyond the first (retry-policy
    /// re-submissions).
    pub retries: u64,
    /// Retries that re-routed to a different engine than the failed
    /// attempt.
    pub failovers: u64,
    /// Jobs resolved with [`QnsError::Timeout`] by the deadline
    /// watchdog.
    pub timeouts: u64,
    /// Submissions rejected with [`QnsError::Overloaded`] by admission
    /// control.
    pub shed: u64,
    /// Refinements admitted at a shallower first level under overload.
    pub degraded: u64,
    /// Total circuit-breaker open transitions across all engines.
    pub breaker_opens: u64,
    /// Keys currently in the single-flight table (queued or executing
    /// unique expectation jobs).
    pub inflight: usize,
    /// The deadline-conversion EWMA of observed refinement throughput
    /// in patterns/second (`0.0` until the first clean fresh level;
    /// levels that failed or carried injected faults never feed it).
    pub refine_rate_pps: f64,
}

impl ServiceStats {
    /// Cache hits over cache probes; `0.0` before the first probe.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Submissions that did **not** trigger a backend execution
    /// (cache hits plus single-flight joins).
    pub fn saved_executions(&self) -> u64 {
        self.cache_hits + self.dedup_joins
    }

    /// Partial-sum cache hits over probes; `0.0` before the first
    /// refinement probes it.
    pub fn partial_cache_hit_rate(&self) -> f64 {
        self.partial_cache.hit_rate()
    }
}

/// One queued unit of work: a one-shot expectation job or an anytime
/// refinement.
enum Work {
    Expect(Task),
    Refine(RefineTask),
}

/// One queued expectation job.
struct Task {
    key: u128,
    route: Route,
    spec: JobSpec,
    flight: Arc<Flight>,
    /// Set by the deadline watchdog when it resolves the flight with
    /// [`QnsError::Timeout`]: workers skip execution of a job that
    /// timed out while queued and stop retrying one that timed out
    /// mid-backoff.
    timed_out: Arc<AtomicBool>,
    /// Per-submission id tying the job's journal events together.
    job_id: u64,
    /// Service-clock timestamp of acceptance; queue wait and
    /// end-to-end latency both measure from here (acceptance and
    /// enqueue happen under one lock hold).
    submitted_micros: u64,
}

/// One queued anytime refinement (see [`crate::refine`]).
struct RefineTask {
    /// Partial-sum cache key ([`partial_sum_key`] of the spec's
    /// fingerprint under the service's refine options).
    key: u128,
    spec: JobSpec,
    /// The deadline level promised to the caller; escalation past it
    /// is best-effort (it stops early on cancel or shutdown).
    first_level: usize,
    final_level: usize,
    shared: Arc<RefineShared>,
    cancel: Arc<AtomicBool>,
    /// See [`Task::job_id`].
    job_id: u64,
    /// See [`Task::submitted_micros`].
    submitted_micros: u64,
}

/// Everything behind the service's single state lock. Workers hold the
/// lock only for queue/cache/table operations — never while a backend
/// runs. Counters live in the metrics registry ([`crate::obs::Obs`]),
/// not here: [`ServiceStats`] is a view over that registry.
struct State {
    queue: VecDeque<Work>,
    cache: LruCache,
    inflight: HashMap<u128, Arc<Flight>>,
    partial: PartialSumCache,
    /// EWMA of observed refinement throughput (patterns/second), used
    /// to convert deadlines into pattern budgets. `0.0` until the
    /// first fresh level completes (the default rate applies then).
    refine_rate_pps: f64,
    shutdown: bool,
}

impl State {
    /// Folds one fresh level's throughput into the deadline-conversion
    /// EWMA (α = 0.3; the first sample seeds it).
    fn observe_refine_rate(&mut self, patterns: usize, seconds: f64) {
        if patterns == 0 {
            return;
        }
        let sample = patterns as f64 / seconds.max(1e-9);
        self.refine_rate_pps = if self.refine_rate_pps > 0.0 {
            0.7 * self.refine_rate_pps + 0.3 * sample
        } else {
            sample
        };
    }
}

/// What the deadline watchdog resolves when an entry expires.
enum WatchdogTarget {
    /// One expectation flight: resolve with [`QnsError::Timeout`]
    /// (first writer wins against the executing worker) and retire the
    /// single-flight entry so later submissions re-execute.
    Expect {
        key: u128,
        flight: Arc<Flight>,
        timed_out: Arc<AtomicBool>,
    },
    /// One refinement: request cooperative cancellation at the next
    /// level boundary and finish the progress stream with
    /// [`QnsError::Timeout`] — already-published levels stay readable
    /// (anytime semantics: a timed-out refinement still answers at the
    /// deepest level it reached, bound attached).
    Refine {
        shared: Arc<RefineShared>,
        cancel: Arc<AtomicBool>,
    },
}

/// One armed deadline.
struct WatchdogEntry {
    /// Service-clock expiry.
    deadline_micros: u64,
    /// The budget the job was given (for the error/journal).
    budget_micros: u64,
    job_id: u64,
    target: WatchdogTarget,
}

struct Shared {
    state: OrderedMutex<State>,
    /// Workers wait here for queued tasks.
    work: OrderedCondvar,
    /// Submitters wait here for queue space (backpressure).
    space: OrderedCondvar,
    queue_capacity: usize,
    engines: Vec<SharedBackend>,
    /// One circuit breaker per engine (same indexing as `engines`),
    /// consulted by Auto routing and fed by execution outcomes.
    breakers: Vec<CircuitBreaker>,
    retry: Option<RetryPolicy>,
    timeout: Option<TimeoutPolicy>,
    admission: Option<AdmissionPolicy>,
    /// Armed deadlines, scanned by the watchdog thread. Outermost lock
    /// in the declared order (`"serve.watchdog"`): registration sites
    /// hold nothing else, and the watchdog releases it before firing.
    watchdog: OrderedMutex<Vec<WatchdogEntry>>,
    /// Wakes the watchdog early (a new, possibly-nearer deadline was
    /// registered, or shutdown).
    watchdog_wake: OrderedCondvar,
    /// Lock-free shutdown mirror of `State::shutdown` for paths that
    /// must not take the state lock (retry backoff, the watchdog scan
    /// loop).
    stopping: AtomicBool,
    /// Options every refinement runs under (strategy/threads are part
    /// of the partial-sum cache key; see [`partial_sum_key`]).
    refine_opts: ApproxOptions,
    /// Metrics registry + event journal (lock-free counters; the
    /// journal has its own innermost lock, see `crate::obs`).
    obs: Obs,
}

impl Shared {
    fn lock(&self) -> OrderedMutexGuard<'_, State> {
        self.state.lock_or_recover()
    }

    /// Arms a deadline. Called with **no** other lock held (the
    /// watchdog lock is outermost in the declared order).
    fn arm_deadline(&self, entry: WatchdogEntry) {
        self.watchdog.lock_or_recover().push(entry);
        self.watchdog_wake.notify_all();
    }

    /// The routed cost estimate deadlines and admission pressure scale
    /// with: the pinned engine's cost hint for fixed routes, the
    /// cheapest feasible hint for Auto. `0` when no engine offers a
    /// model — the policy then degrades to its flat base behavior.
    fn cost_estimate(&self, job: &ExpectationJob<'_>, route: Route) -> u128 {
        match route {
            Route::Fixed(name) => self
                .engines
                .iter()
                .find(|e| e.name() == name)
                .and_then(|e| e.cost_hint(job))
                .unwrap_or(0),
            Route::Auto => self
                .engines
                .iter()
                .filter(|e| e.supports(job).is_ok())
                .filter_map(|e| e.cost_hint(job))
                .min()
                .unwrap_or(0),
        }
    }
}

/// Configures and spawns a [`Service`].
///
/// Defaults: 2 workers, a 256-entry cache, a 1024-deep queue,
/// [`Route::Auto`], and one default-configured instance of every
/// engine in the workspace. Replace the engine set (to pick
/// approximation levels, bond caps, sample counts or seeds) with
/// [`ServiceBuilder::engines`] / [`ServiceBuilder::with_engine`].
#[derive(Clone)]
pub struct ServiceBuilder {
    workers: usize,
    cache_capacity: usize,
    queue_capacity: usize,
    partial_cache_capacity: usize,
    journal_capacity: usize,
    route: Route,
    engines: Vec<SharedBackend>,
    refine_opts: ApproxOptions,
    retry: Option<RetryPolicy>,
    timeout: Option<TimeoutPolicy>,
    admission: Option<AdmissionPolicy>,
    breaker: BreakerPolicy,
}

/// One default-configured instance of every engine in the workspace —
/// the engine set a [`ServiceBuilder`] starts from.
pub fn default_engines() -> Vec<SharedBackend> {
    vec![
        Arc::new(ApproxBackend::level(1)),
        Arc::new(DensityBackend::new()),
        Arc::new(TnetBackend::new()),
        Arc::new(TddBackend::new()),
        Arc::new(MpoBackend::default()),
        Arc::new(TrajectoryBackend::default()),
    ]
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            workers: 2,
            cache_capacity: 256,
            queue_capacity: 1024,
            partial_cache_capacity: 128,
            journal_capacity: 4096,
            route: Route::Auto,
            engines: default_engines(),
            refine_opts: ApproxOptions::default(),
            retry: None,
            timeout: None,
            admission: None,
            breaker: BreakerPolicy::default(),
        }
    }
}

impl ServiceBuilder {
    /// A builder with the defaults described on the type.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker-thread count (clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Result-cache capacity in entries; `0` disables caching (every
    /// submission past the single-flight window re-executes).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Bounded-queue depth (clamped to ≥ 1). Submissions block while
    /// the queue is full.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// The routing policy [`Service::submit`] uses
    /// ([`Service::submit_routed`] overrides it per job).
    pub fn route(mut self, route: Route) -> Self {
        self.route = route;
        self
    }

    /// Replaces the engine set.
    pub fn engines(mut self, engines: Vec<SharedBackend>) -> Self {
        self.engines = engines;
        self
    }

    /// Appends one engine to the set.
    pub fn with_engine(mut self, engine: SharedBackend) -> Self {
        self.engines.push(engine);
        self
    }

    /// Partial-sum cache capacity in *jobs* (each entry holds one
    /// job's per-level prefix); `0` disables resume-from-cache.
    pub fn partial_cache_capacity(mut self, capacity: usize) -> Self {
        self.partial_cache_capacity = capacity;
        self
    }

    /// Event-journal capacity in events (default 4096). The journal is
    /// a bounded ring: once full, the oldest events are overwritten and
    /// counted into `qns_serve_events_dropped_total`. `0` disables
    /// journaling (every event is counted as dropped).
    pub fn journal_capacity(mut self, capacity: usize) -> Self {
        self.journal_capacity = capacity;
        self
    }

    /// The [`ApproxOptions`] every [`Service::submit_refine`]
    /// refinement runs under. The `level` field is ignored (the
    /// request's budget and `max_level` choose levels); `max_terms`
    /// caps the deepest level the service will ever escalate to, and
    /// `strategy`/`threads` select the (bit-affecting) contraction
    /// configuration the partial-sum cache is keyed by.
    pub fn refine_options(mut self, opts: ApproxOptions) -> Self {
        self.refine_opts = opts;
        self
    }

    /// Enables retry/failover: failed attempts whose error is
    /// retryable ([`QnsError::is_retryable`]) re-route — excluding
    /// already-failed engines under [`Route::Auto`] — after a bounded,
    /// deterministically-jittered exponential backoff. Without a
    /// policy every job gets exactly one attempt.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Enables per-job deadlines: a watchdog thread resolves handles
    /// whose cost-scaled budget elapses with [`QnsError::Timeout`]
    /// (refinements are cancelled cooperatively at the next level
    /// boundary and keep their published levels). Without a policy no
    /// watchdog thread is even spawned.
    pub fn timeout_policy(mut self, policy: TimeoutPolicy) -> Self {
        self.timeout = Some(policy);
        self
    }

    /// Enables admission control: overload degrades refinements to
    /// shallower (still Theorem-1-bounded) first levels, and extreme
    /// overload sheds submissions with [`QnsError::Overloaded`] before
    /// they consume queue space. Without a policy the only submission
    /// pushback is the bounded queue's backpressure.
    pub fn admission_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Tunes the per-engine circuit breakers (always present; the
    /// default [`BreakerPolicy`] only changes routing after an engine
    /// exhibits repeated failures).
    pub fn breaker_policy(mut self, policy: BreakerPolicy) -> Self {
        self.breaker = policy;
        self
    }

    /// Spawns the worker pool and returns the running service.
    pub fn build(self) -> Service {
        let engine_names: Vec<&'static str> = self.engines.iter().map(|e| e.name()).collect();
        let obs = Obs::new(&engine_names, self.journal_capacity);
        let (cache_hits, cache_misses, cache_evictions) = obs.cache_counters();
        let (partial_hits, partial_misses, partial_evictions) = obs.partial_cache_counters();
        // Breaker metric children are registered eagerly here, one per
        // engine, so breaker transitions on the execution path never
        // allocate and every labeled series exists before first export.
        let breakers = engine_names
            .iter()
            .map(|&name| {
                let (state_gauge, opens) = obs.breaker_handles(name);
                CircuitBreaker::new(self.breaker).with_metrics(state_gauge, opens)
            })
            .collect();
        let shared = Arc::new(Shared {
            state: OrderedMutex::new(
                "serve.state",
                State {
                    queue: VecDeque::new(),
                    cache: LruCache::with_counters(
                        self.cache_capacity,
                        cache_hits,
                        cache_misses,
                        cache_evictions,
                    ),
                    inflight: HashMap::new(),
                    partial: PartialSumCache::with_counters(
                        self.partial_cache_capacity,
                        partial_hits,
                        partial_misses,
                        partial_evictions,
                    ),
                    refine_rate_pps: 0.0,
                    shutdown: false,
                },
            ),
            work: OrderedCondvar::new(),
            space: OrderedCondvar::new(),
            queue_capacity: self.queue_capacity,
            engines: self.engines,
            breakers,
            retry: self.retry,
            timeout: self.timeout,
            admission: self.admission,
            watchdog: OrderedMutex::new("serve.watchdog", Vec::new()),
            watchdog_wake: OrderedCondvar::new(),
            stopping: AtomicBool::new(false),
            refine_opts: self.refine_opts,
            obs,
        });
        let workers = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qns-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        // The watchdog thread only exists when deadlines do.
        let watchdog = self.timeout.map(|policy| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("qns-serve-watchdog".into())
                .spawn(move || watchdog_loop(&shared, policy))
                .expect("spawn service watchdog") // qns-lint: allow(panic)
        });
        Service {
            shared,
            workers,
            watchdog,
            default_route: self.route,
        }
    }
}

/// The running service: worker pool + queue + cache + single-flight
/// table. The crate-level docs describe the submission protocol.
/// Dropping the service shuts it down: no new submissions, queued
/// work drains, workers join.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    default_route: Route,
}

impl Service {
    /// Submits under the builder's default routing policy.
    ///
    /// # Errors
    ///
    /// [`QnsError::InvalidJob`] after [`Service::shutdown`]. Routing
    /// and execution errors arrive on the handle, not here.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobHandle, QnsError> {
        self.submit_routed(spec, self.default_route)
    }

    /// Submits under an explicit routing policy.
    ///
    /// # Errors
    ///
    /// As [`Service::submit`].
    pub fn submit_routed(&self, spec: &JobSpec, route: Route) -> Result<JobHandle, QnsError> {
        let key = route.cache_key(spec.fingerprint);
        let obs = &self.shared.obs;
        let mut state = self.shared.lock();
        if state.shutdown {
            return Err(QnsError::InvalidJob {
                reason: "service has shut down".into(),
            });
        }
        // `submitted` counts *accepted* submissions only, so each of
        // the three accept paths below bumps it — never a rejection
        // (including the post-backpressure shutdown rejection).
        // Submit-path events are recorded while the state lock is held
        // (the journal lock is innermost), so a racing worker's
        // `Dequeued` can never precede this submission's `Enqueued` in
        // the journal.

        // 1. Already queued or running: join that flight. No cache
        //    probe — a join is not a cache miss.
        if let Some(flight) = state.inflight.get(&key).map(Arc::clone) {
            let job_id = obs.job_id();
            obs.submitted.inc();
            obs.dedup_joins.inc();
            obs.mark_submit(obs.now_micros());
            obs.record(job_id, EventKind::Submitted);
            obs.record(job_id, EventKind::DedupJoined);
            return Ok(JobHandle { flight });
        }
        // 2. Completed before: answer from the cache. The chaos hook
        //    models a slow cache path (a `cache.probe` Sleep rule
        //    stalls the submitter under the state lock — deliberately,
        //    that is what a slow cache does); Trip is meaningless for a
        //    probe and ignored. No plan installed ⇒ one relaxed load.
        faults::apply_delay(faults::failpoint("cache.probe"));
        if let Some(est) = state.cache.get(key) {
            let job_id = obs.job_id();
            obs.submitted.inc();
            let now = obs.now_micros();
            obs.mark_submit(now);
            obs.mark_resolve(now);
            obs.record(job_id, EventKind::Submitted);
            obs.record(job_id, EventKind::CacheHit);
            obs.record(job_id, EventKind::Resolved { ok: true });
            return Ok(JobHandle {
                flight: Flight::resolved(Ok(est)),
            });
        }
        // 3. Admission control (only for work that would actually
        //    consume a worker: joins and cache hits above are free and
        //    must never shed). Expectation jobs have no level lever,
        //    so the only admission verdict here is shed-or-accept.
        let cost = self.shared.admission.map(|adm| {
            let c = self.shared.cost_estimate(&spec.job(), route);
            (adm, c)
        });
        if let Some((adm, cost)) = cost {
            let pressure = (state.queue.len() as u128 + 1).saturating_mul(cost.max(1));
            if pressure >= adm.shed_pressure {
                let queue_depth = state.queue.len();
                let job_id = obs.job_id();
                obs.shed.inc();
                obs.record(
                    job_id,
                    EventKind::Shed {
                        queue_depth: u32::try_from(queue_depth).unwrap_or(u32::MAX),
                    },
                );
                return Err(QnsError::Overloaded { queue_depth });
            }
        }
        // 4. First submission: own the flight, enter the bounded queue.
        let flight = Flight::pending();
        state.inflight.insert(key, Arc::clone(&flight));
        while state.queue.len() >= self.shared.queue_capacity && !state.shutdown {
            state = self.shared.space.wait(state);
        }
        // The shutdown check must come AFTER the wait loop, not only
        // inside it: workers may drain the queue and exit (observing
        // `shutdown && queue empty`) between our wake-up and
        // reacquiring the lock, in which case the queue has space but a
        // pushed task would never run. Other submissions may have
        // dedup-joined this flight while we waited — resolve it with
        // the shutdown error before abandoning it, or their handles
        // would hang forever.
        if state.shutdown {
            let err = QnsError::InvalidJob {
                reason: "service shut down while awaiting queue space".into(),
            };
            flight.fill(Err(err.clone()));
            state.inflight.remove(&key);
            return Err(err);
        }
        let job_id = obs.job_id();
        obs.submitted.inc();
        let now = obs.now_micros();
        obs.mark_submit(now);
        let timed_out = Arc::new(AtomicBool::new(false));
        state.queue.push_back(Work::Expect(Task {
            key,
            route,
            spec: spec.clone(),
            flight: Arc::clone(&flight),
            timed_out: Arc::clone(&timed_out),
            job_id,
            submitted_micros: now,
        }));
        let depth = state.queue.len();
        obs.queue_depth.set(depth as i64);
        obs.record(job_id, EventKind::Submitted);
        obs.record(
            job_id,
            EventKind::Enqueued {
                queue_depth: u32::try_from(depth).unwrap_or(u32::MAX),
            },
        );
        drop(state);
        self.shared.work.notify_one();
        // Deadline armed AFTER the state lock is released: the
        // watchdog table is outermost in the lock order, so it is
        // never acquired while `serve.state` is held.
        if let Some(tp) = &self.shared.timeout {
            let budget = tp.budget_micros(self.shared.cost_estimate(&spec.job(), route));
            self.shared.arm_deadline(WatchdogEntry {
                deadline_micros: now.saturating_add(budget),
                budget_micros: budget,
                job_id,
                target: WatchdogTarget::Expect {
                    key,
                    flight: Arc::clone(&flight),
                    timed_out,
                },
            });
        }
        Ok(JobHandle { flight })
    }

    /// Submits an anytime refinement: the job's pattern sum is
    /// computed level by level under the builder's
    /// [`refine options`](ServiceBuilder::refine_options), answering
    /// first at the deepest level whose *uncached* cost fits the
    /// request's budget and escalating the remaining levels in the
    /// background. Every completed level streams through the returned
    /// [`RefinementHandle`]; cached per-level partial sums make a
    /// resubmission resume where the last run stopped.
    ///
    /// # Errors
    ///
    /// [`QnsError::InvalidJob`] after shutdown or for a `NaN`
    /// deadline; [`QnsError::TermBudgetExceeded`] when even level 0
    /// exceeds the refine options' `max_terms` guard. Execution errors
    /// arrive on the handle.
    pub fn submit_refine(
        &self,
        spec: &JobSpec,
        req: &RefineRequest,
    ) -> Result<RefinementHandle, QnsError> {
        req.validate()?;
        let opts = self.shared.refine_opts;
        let n = spec.noisy().noise_count();
        // Deepest level the options' term budget allows at all.
        let mut feasible = None;
        for level in 0..=n {
            if qns_core::bounds::planned_patterns(n, level) <= opts.max_terms {
                feasible = Some(level);
            } else {
                break;
            }
        }
        let Some(feasible_cap) = feasible else {
            return Err(QnsError::TermBudgetExceeded {
                level: 0,
                planned: 1,
                max_terms: opts.max_terms,
            });
        };
        let final_level = req.max_level.unwrap_or(n).min(n).min(feasible_cap);
        let key = partial_sum_key(spec.fingerprint(), &opts).as_u128();
        let cancel = Arc::new(AtomicBool::new(false));
        let progress = Arc::new(RefineShared::default());

        let mut state = self.shared.lock();
        if state.shutdown {
            return Err(QnsError::InvalidJob {
                reason: "service has shut down".into(),
            });
        }
        // Deadline level: cached levels are free, so pricing happens
        // against the cache as it stands at submission time.
        let cached_levels = state.partial.peek_len(key);
        let budget = req.resolved_budget(state.refine_rate_pps);
        let requested_level = deadline_level(n, final_level, cached_levels, budget);
        let mut first_level = requested_level;
        // Admission control: between the two pressure thresholds the
        // refinement is admitted at a shallower first level — the
        // Theorem-1 bound still holds at the served level, so the
        // degraded answer is worse only in tightness, never in
        // validity. Above the shed threshold it is rejected outright.
        if let Some(adm) = &self.shared.admission {
            let cost = qns_core::bounds::planned_patterns(n, final_level);
            let pressure = (state.queue.len() as u128 + 1).saturating_mul(cost.max(1));
            if pressure >= adm.shed_pressure {
                let queue_depth = state.queue.len();
                let obs = &self.shared.obs;
                let job_id = obs.job_id();
                obs.shed.inc();
                obs.record(
                    job_id,
                    EventKind::Shed {
                        queue_depth: u32::try_from(queue_depth).unwrap_or(u32::MAX),
                    },
                );
                return Err(QnsError::Overloaded { queue_depth });
            }
            if pressure >= adm.degrade_pressure {
                // Overload factor ≥ 2: the budget shrinks in
                // proportion to how far past the threshold we are.
                // Unlimited budgets clamp to the full plan cost first —
                // any budget beyond it buys the same levels, and an
                // unbounded request must still degrade under pressure.
                let factor = (pressure / adm.degrade_pressure.max(1)).saturating_add(1);
                let scaled = budget.min(cost) / factor;
                first_level = deadline_level(n, final_level, cached_levels, scaled);
            }
        }
        while state.queue.len() >= self.shared.queue_capacity && !state.shutdown {
            state = self.shared.space.wait(state);
        }
        // Same post-backpressure re-check as submit_routed: workers may
        // have drained and exited while we waited for space.
        if state.shutdown {
            let err = QnsError::InvalidJob {
                reason: "service shut down while awaiting queue space".into(),
            };
            progress.finish(Some(err.clone()), false);
            return Err(err);
        }
        let obs = &self.shared.obs;
        let job_id = obs.job_id();
        obs.submitted.inc();
        obs.refinements.inc();
        obs.refine_active.inc();
        if first_level < requested_level {
            obs.degraded.inc();
            obs.record(
                job_id,
                EventKind::Degraded {
                    requested_level: u32::try_from(requested_level).unwrap_or(u32::MAX),
                    served_level: u32::try_from(first_level).unwrap_or(u32::MAX),
                },
            );
        }
        let now = obs.now_micros();
        obs.mark_submit(now);
        state.queue.push_back(Work::Refine(RefineTask {
            key,
            spec: spec.clone(),
            first_level,
            final_level,
            shared: Arc::clone(&progress),
            cancel: Arc::clone(&cancel),
            job_id,
            submitted_micros: now,
        }));
        let depth = state.queue.len();
        obs.queue_depth.set(depth as i64);
        obs.record(job_id, EventKind::Submitted);
        obs.record(
            job_id,
            EventKind::RefineSubmitted {
                first_level: u32::try_from(first_level).unwrap_or(u32::MAX),
                final_level: u32::try_from(final_level).unwrap_or(u32::MAX),
            },
        );
        obs.record(
            job_id,
            EventKind::Enqueued {
                queue_depth: u32::try_from(depth).unwrap_or(u32::MAX),
            },
        );
        drop(state);
        self.shared.work.notify_one();
        // Same post-release deadline arming as `submit_routed`; the
        // cost estimate is the refinement's full Theorem-1 pattern
        // plan, so deeper refinements earn proportionally more time.
        if let Some(tp) = &self.shared.timeout {
            let budget = tp.budget_micros(qns_core::bounds::planned_patterns(n, final_level));
            self.shared.arm_deadline(WatchdogEntry {
                deadline_micros: now.saturating_add(budget),
                budget_micros: budget,
                job_id,
                target: WatchdogTarget::Refine {
                    shared: Arc::clone(&progress),
                    cancel: Arc::clone(&cancel),
                },
            });
        }
        Ok(RefinementHandle::new(
            progress,
            cancel,
            first_level,
            final_level,
        ))
    }

    /// The options every refinement runs under (see
    /// [`ServiceBuilder::refine_options`]).
    pub fn refine_options(&self) -> &ApproxOptions {
        &self.shared.refine_opts
    }

    /// A point-in-time snapshot of the service's counters — a view
    /// over the metrics registry (the counters live there; see
    /// [`Service::metrics_snapshot`] for the full export).
    pub fn stats(&self) -> ServiceStats {
        let obs = &self.shared.obs;
        let (cache, partial_cache, inflight, refine_rate_pps) = {
            let state = self.shared.lock();
            (
                state.cache.counters(),
                state.partial.counters(),
                state.inflight.len(),
                state.refine_rate_pps,
            )
        };
        let mut per_backend = BTreeMap::new();
        for (name, handles) in &obs.backends {
            let jobs = handles.jobs.get();
            if jobs > 0 {
                per_backend.insert(
                    *name,
                    BackendStats {
                        jobs,
                        seconds: handles.micros.get() as f64 / 1e6,
                    },
                );
            }
        }
        let refine_levels_completed = obs
            .registry
            .counter_values("qns_serve_refine_levels_completed_total")
            .into_iter()
            .filter_map(|(label, count)| label.parse::<usize>().ok().map(|level| (level, count)))
            .collect();
        ServiceStats {
            submitted: obs.submitted.get(),
            executed: obs.executed.get(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            dedup_joins: obs.dedup_joins.get(),
            queue_high_water: usize::try_from(obs.queue_depth.high_water()).unwrap_or(0),
            per_backend,
            refinements: obs.refinements.get(),
            refine_levels_completed,
            refine_levels_from_cache: obs.refine_from_cache.get(),
            refine_active: usize::try_from(obs.refine_active.get()).unwrap_or(0),
            refine_high_water: usize::try_from(obs.refine_active.high_water()).unwrap_or(0),
            refine_cancelled: obs.refine_cancelled.get(),
            partial_cache,
            retries: obs.retries.get(),
            failovers: obs.failovers.get(),
            timeouts: obs.timeouts.get(),
            shed: obs.shed.get(),
            degraded: obs.degraded.get(),
            breaker_opens: self.shared.breakers.iter().map(CircuitBreaker::opens).sum(),
            inflight,
            refine_rate_pps,
        }
    }

    /// The current per-engine circuit-breaker states, in registration
    /// order (paired with [`Service::engine_names`]).
    pub fn breaker_states(&self) -> Vec<(&'static str, crate::breaker::BreakerState)> {
        self.shared
            .engines
            .iter()
            .zip(&self.shared.breakers)
            .map(|(e, b)| (e.name(), b.state()))
            .collect()
    }

    /// A point-in-time copy of every metric series the service (and
    /// anything else sharing [`Service::metrics_registry`], e.g. the
    /// `qns-tnet` replay profiler) has recorded. Feed it to
    /// [`qns_obs::export::to_prometheus`] /
    /// [`qns_obs::export::to_json`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.obs.registry.snapshot()
    }

    /// The service's metrics registry — shareable with other
    /// instrumented components (e.g.
    /// `qns_tnet::profile::install`) so their series export alongside
    /// the service's.
    pub fn metrics_registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.obs.registry)
    }

    /// Drains the event journal: every buffered per-job lifecycle
    /// event, oldest first, plus the cumulative count of events lost
    /// to ring overflow. Use [`qns_obs::DrainedEvents::timelines`] to
    /// regroup per job.
    pub fn drain_events(&self) -> DrainedEvents {
        self.shared.obs.drain_events()
    }

    /// Names of the registered engines, in registration (= routing
    /// tie-break) order.
    pub fn engine_names(&self) -> Vec<&'static str> {
        self.shared.engines.iter().map(|e| e.name()).collect()
    }

    /// Signals shutdown without waiting: new submissions are rejected
    /// and submitters blocked on queue space wake with an error (their
    /// flights resolve), while already-queued work keeps draining.
    /// [`Service::shutdown`] / dropping the service additionally join
    /// the workers.
    pub fn begin_shutdown(&self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        // The lock-free mirror interrupts retry backoffs and stops the
        // watchdog scan loop.
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        self.shared.watchdog_wake.notify_all();
    }

    /// Stops accepting submissions, drains the queue, and joins the
    /// workers. Outstanding handles all resolve before this returns.
    /// Dropping the service does the same.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// One worker: pop, route, execute (lock released), record, resolve.
/// On shutdown the loop drains the queue before exiting, so every
/// accepted submission resolves.
fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut state = shared.lock();
            loop {
                if let Some(work) = state.queue.pop_front() {
                    shared.obs.queue_depth.set(state.queue.len() as i64);
                    shared.space.notify_one();
                    break Some(work);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work.wait(state);
            }
        };
        match work {
            Some(Work::Expect(task)) => run_expectation(shared, task),
            Some(Work::Refine(task)) => run_refinement(shared, task),
            None => return,
        }
    }
}

/// Removes `task`'s single-flight entry iff it still owns it. The
/// watchdog retires entries for timed-out jobs (so later submissions
/// re-execute), after which the same key may belong to a *newer*
/// flight — which must not be clobbered by this worker's cleanup.
fn retire_flight(state: &mut State, key: u128, flight: &Arc<Flight>) {
    if state
        .inflight
        .get(&key)
        .is_some_and(|f| Arc::ptr_eq(f, flight))
    {
        state.inflight.remove(&key);
    }
}

/// Sleeps out a retry backoff in small slices, aborting early on
/// shutdown or when the job's deadline fired. Returns whether the full
/// backoff elapsed (i.e. the retry should proceed).
fn backoff_sleep(shared: &Shared, task: &Task, micros: u64) -> bool {
    let mut remaining = micros;
    loop {
        if shared.stopping.load(Ordering::Acquire) || task.timed_out.load(Ordering::Acquire) {
            return false;
        }
        if remaining == 0 {
            return true;
        }
        let chunk = remaining.min(1_000);
        std::thread::sleep(Duration::from_micros(chunk));
        remaining -= chunk;
    }
}

/// Executes one expectation task: route (around open breakers and
/// already-failed engines), execute (lock released), retry retryable
/// failures under the retry policy, record, resolve.
fn run_expectation(shared: &Shared, task: Task) {
    let obs = &shared.obs;
    let wait_micros = obs.now_micros().saturating_sub(task.submitted_micros);
    obs.queue_wait.record(wait_micros);
    obs.record(
        task.job_id,
        EventKind::Dequeued {
            queue_wait_micros: wait_micros,
        },
    );
    if task.timed_out.load(Ordering::Acquire) {
        // The deadline fired while the job was still queued: the
        // watchdog already resolved the flight, so there is nothing
        // left to execute — just drop our (already-retired) ownership.
        let mut state = shared.lock();
        retire_flight(&mut state, task.key, &task.flight);
        return;
    }
    let max_attempts = shared.retry.map_or(1, |r| r.max_attempts.max(1));
    // Engines that failed this job (Auto failover skips them on the
    // next attempt; the router falls back if they were the only
    // option).
    let mut failed: Vec<usize> = Vec::new();
    let mut prev_engine: Option<&'static str> = None;
    let mut attempt = 0u32;
    let result = loop {
        attempt += 1;
        let mut routed_idx: Option<usize> = None;
        let mut routed_name: Option<&'static str> = None;
        // A panicking backend (custom engines arrive through
        // `ServiceBuilder::with_engine`) must not kill the worker:
        // that would strand the flight — every joined handle would
        // hang in `wait()` forever — and silently shrink the pool.
        // Contain it and treat it as a (retryable) failed attempt.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let job = task.spec.job();
            let now = obs.now_micros();
            let pick = route_job_masked(&shared.engines, &job, task.route, |i| {
                !failed.contains(&i) && shared.breakers[i].candidate(now)
            });
            match pick {
                Ok(idx) => {
                    routed_idx = Some(idx);
                    let engine = &shared.engines[idx];
                    routed_name = Some(engine.name());
                    // An open-but-cooled breaker spends its half-open
                    // trial on this attempt.
                    shared.breakers[idx].begin_attempt(now);
                    obs.record(
                        task.job_id,
                        EventKind::Routed {
                            engine: engine.name(),
                            cost: engine
                                .cost_hint(&job)
                                .map_or(u64::MAX, |c| u64::try_from(c).unwrap_or(u64::MAX)),
                        },
                    );
                    if let Some(prev) = prev_engine {
                        if prev != engine.name() {
                            obs.failovers.inc();
                            obs.record(
                                task.job_id,
                                EventKind::FailedOver {
                                    from: prev,
                                    to: engine.name(),
                                },
                            );
                        }
                    }
                    let (result, seconds) = time_it(|| engine.expectation(&job));
                    (result, Some((engine.name(), seconds)))
                }
                Err(e) => (Err(e), None),
            }
        }));
        let (attempt_result, executed_on) = outcome.unwrap_or_else(|payload| {
            (
                Err(QnsError::ExecutionPanicked {
                    reason: format!("backend panicked: {}", panic_reason(payload.as_ref())),
                }),
                None,
            )
        });
        if let Some((name, seconds)) = executed_on {
            let micros = (seconds * 1e6) as u64;
            obs.executed.inc();
            if let Some(handles) = obs.backends.get(name) {
                handles.jobs.inc();
                handles.micros.add(micros);
            }
            obs.record(
                task.job_id,
                EventKind::Executed {
                    engine: name,
                    micros,
                    ok: attempt_result.is_ok(),
                },
            );
        }
        // Breaker feedback covers panics too: `routed_idx` was latched
        // before the engine ran.
        if let Some(idx) = routed_idx {
            match &attempt_result {
                Ok(_) => shared.breakers[idx].on_success(),
                Err(_) => shared.breakers[idx].on_failure(obs.now_micros()),
            }
        }
        match attempt_result {
            Ok(est) => break Ok(est),
            Err(err) => {
                if attempt >= max_attempts
                    || !err.is_retryable()
                    || task.timed_out.load(Ordering::Acquire)
                    || shared.stopping.load(Ordering::Acquire)
                {
                    break Err(err);
                }
                if let Some(idx) = routed_idx {
                    if !failed.contains(&idx) {
                        failed.push(idx);
                    }
                }
                prev_engine = routed_name.or(prev_engine);
                let backoff = shared
                    .retry
                    .map_or(0, |r| r.backoff_micros(attempt, task.job_id));
                obs.retries.inc();
                obs.record(
                    task.job_id,
                    EventKind::Retried {
                        attempt: attempt + 1,
                        backoff_micros: backoff,
                    },
                );
                if !backoff_sleep(shared, &task, backoff) {
                    // Shutdown or deadline interrupted the backoff:
                    // resolve with the last error instead of retrying.
                    break Err(err);
                }
            }
        }
    };

    {
        let mut state = shared.lock();
        if let Ok(est) = &result {
            state.cache.insert(task.key, est.clone());
        }
        retire_flight(&mut state, task.key, &task.flight);
    }
    let ok = result.is_ok();
    task.flight.try_fill_with(result, || {
        let now = obs.now_micros();
        obs.e2e.record(now.saturating_sub(task.submitted_micros));
        obs.mark_resolve(now);
        obs.record(task.job_id, EventKind::Resolved { ok });
    });
    // On a lost race the watchdog already resolved (and journaled) the
    // flight as timed out mid-execution; the late result was still
    // cached above.
}

/// The deadline watchdog: scans the armed-deadline table, fires every
/// expired entry (resolving its flight or refinement stream with
/// [`QnsError::Timeout`] — first writer wins against the executing
/// worker), and sleeps until the nearest remaining deadline, capped at
/// the policy's scan interval. New registrations and shutdown wake it
/// early.
fn watchdog_loop(shared: &Shared, policy: TimeoutPolicy) {
    loop {
        // Collect expired entries under the watchdog lock, then fire
        // them after releasing it: firing acquires `serve.state`
        // (legal — the watchdog table is outermost in the lock order)
        // and holding the table across those acquisitions would stall
        // every submission's deadline registration.
        let now = shared.obs.now_micros();
        let (expired, next_deadline) = {
            let mut entries = shared.watchdog.lock_or_recover();
            let mut expired = Vec::new();
            let mut i = 0;
            while i < entries.len() {
                if entries[i].deadline_micros <= now {
                    expired.push(entries.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            (expired, entries.iter().map(|e| e.deadline_micros).min())
        };
        for entry in expired {
            fire_deadline(shared, entry);
        }
        if shared.stopping.load(Ordering::Acquire) {
            // Shutdown: the draining workers resolve everything still
            // armed; racing them with timeout verdicts mid-drain would
            // turn legitimate results into spurious timeouts.
            return;
        }
        let wait = next_deadline
            .map(|d| d.saturating_sub(shared.obs.now_micros()))
            .unwrap_or(policy.check_interval_micros)
            .clamp(1, policy.check_interval_micros.max(1));
        let entries = shared.watchdog.lock_or_recover();
        let _ = shared
            .watchdog_wake
            .wait_timeout(entries, Duration::from_micros(wait));
    }
}

/// Fires one expired deadline. Resolution is first-writer-wins: when
/// the executing worker already resolved (or resolves concurrently),
/// firing is a no-op and records nothing.
fn fire_deadline(shared: &Shared, entry: WatchdogEntry) {
    let obs = &shared.obs;
    let timeout = QnsError::Timeout {
        after_micros: entry.budget_micros,
    };
    let bookkeeping = || {
        obs.timeouts.inc();
        obs.record(
            entry.job_id,
            EventKind::TimedOut {
                after_micros: entry.budget_micros,
            },
        );
        obs.mark_resolve(obs.now_micros());
        obs.record(entry.job_id, EventKind::Resolved { ok: false });
    };
    match entry.target {
        WatchdogTarget::Expect {
            key,
            flight,
            timed_out,
        } => {
            // Flag first: workers skip executing a job that timed out
            // while queued and abandon retry backoffs in progress.
            timed_out.store(true, Ordering::Release);
            // Retire the single-flight entry (if this flight still
            // owns it) so later identical submissions re-execute
            // instead of joining a timed-out verdict.
            {
                let mut state = shared.lock();
                retire_flight(&mut state, key, &flight);
            }
            flight.try_fill_with(Err(timeout), bookkeeping);
        }
        WatchdogTarget::Refine { shared, cancel } => {
            // Cooperative: the worker stops at the next level
            // boundary; levels already published stay readable
            // (anytime semantics — the caller still gets the deepest
            // Theorem-1-bounded answer the budget paid for).
            cancel.store(true, Ordering::Relaxed);
            shared.finish_with(Some(timeout), false, bookkeeping);
        }
    }
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Executes one refinement: install the cached level prefix, compute
/// the remaining levels up to `final_level`, publish each completed
/// level, and stop at a level boundary on cancel — or, once the
/// promised `first_level` is in, on shutdown (the deadline answer is
/// honoured even while draining; escalation past it is best-effort).
fn run_refinement(shared: &Shared, task: RefineTask) {
    let obs = &shared.obs;
    let wait_micros = obs.now_micros().saturating_sub(task.submitted_micros);
    obs.queue_wait.record(wait_micros);
    obs.record(
        task.job_id,
        EventKind::Dequeued {
            queue_wait_micros: wait_micros,
        },
    );
    // Same containment rationale as `run_expectation`: a panic must
    // resolve the progress state, not strand every handle.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_refinement_inner(shared, &task)
    }));
    let (error, cancelled) = match outcome {
        Ok(Ok(cancelled)) => (None, cancelled),
        Ok(Err(e)) => (Some(e), false),
        Err(payload) => (
            Some(QnsError::ExecutionPanicked {
                reason: format!("refinement panicked: {}", panic_reason(payload.as_ref())),
            }),
            false,
        ),
    };
    // Retire the gauge BEFORE publishing completion: anyone who
    // observes the refinement as done (via a handle wait) must also
    // observe `refine_active` already decremented.
    obs.refine_active.dec();
    let ok = error.is_none();
    // Only a winning finish records the terminal bookkeeping: when the
    // deadline watchdog finished the stream first, it already journaled
    // `TimedOut` + `Resolved`, and a cooperative cancel-on-timeout must
    // not also count as a user cancellation.
    task.shared.finish_with(error, cancelled, || {
        if cancelled {
            obs.refine_cancelled.inc();
        }
        let now = obs.now_micros();
        obs.e2e.record(now.saturating_sub(task.submitted_micros));
        obs.mark_resolve(now);
        obs.record(task.job_id, EventKind::Resolved { ok });
    });
}

/// The refinement loop proper; returns whether it stopped on a cancel.
fn run_refinement_inner(shared: &Shared, task: &RefineTask) -> Result<bool, QnsError> {
    let job = task.spec.job();
    let mut refinement = Refinement::new(&job, &shared.refine_opts)?;
    let cached = shared.lock().partial.probe(task.key);
    let mut total_seconds = 0.0;
    let mut cancelled = false;
    while refinement.next_level() <= task.final_level {
        let reached_first = refinement
            .completed_level()
            .is_some_and(|c| c >= task.first_level);
        if task.cancel.load(Ordering::Relaxed) {
            cancelled = true;
            break;
        }
        if reached_first && shared.lock().shutdown {
            break;
        }
        let level = refinement.next_level();
        if level < cached.len() {
            let partial =
                refinement.install_level(cached[level].contribution, cached[level].patterns)?;
            let estimate = refinement.estimate_for(&partial);
            shared.obs.refine_from_cache.inc();
            shared.obs.record(
                task.job_id,
                EventKind::RefineLevel {
                    level: u32::try_from(level).unwrap_or(u32::MAX),
                    patterns: partial.level_patterns as u64,
                    micros: 0,
                    from_cache: true,
                },
            );
            task.shared.publish(RefinementUpdate {
                partial,
                estimate,
                from_cache: true,
            });
        } else {
            // Chaos hook: an injected `refine.advance` fault fails the
            // level outright (Trip) or stalls it (Sleep). No plan
            // installed ⇒ one relaxed atomic load.
            let fault = faults::failpoint("refine.advance");
            if matches!(fault, FaultAction::Trip) {
                return Err(QnsError::ExecutionPanicked {
                    reason: format!("injected fault: refine.advance at level {level}"),
                });
            }
            let (result, seconds) = time_it(|| {
                faults::apply_delay(fault);
                refinement.advance()
            });
            let partial = result?;
            total_seconds += seconds;
            let micros = (seconds * 1e6) as u64;
            let estimate = refinement.estimate_for(&partial);
            // A level whose wall time was stalled by an injected fault
            // — or that a timeout/cancel interrupted mid-flight — is
            // not a throughput signal: feeding it into the
            // deadline-conversion EWMA would poison every later
            // deadline → level conversion toward absurdly shallow
            // answers. (Failed levels never get here: `?` above.)
            let poisoned =
                !matches!(fault, FaultAction::None) || task.cancel.load(Ordering::Relaxed);
            {
                let mut state = shared.lock();
                state.partial.record(
                    task.key,
                    level,
                    LevelSum {
                        contribution: partial.level_contribution,
                        patterns: partial.level_patterns,
                    },
                );
                if !poisoned {
                    state.observe_refine_rate(partial.level_patterns, seconds);
                }
            }
            shared.obs.refine_level_micros.record(micros);
            shared.obs.refine_level_counter(level).inc();
            shared.obs.record(
                task.job_id,
                EventKind::RefineLevel {
                    level: u32::try_from(level).unwrap_or(u32::MAX),
                    patterns: partial.level_patterns as u64,
                    micros,
                    from_cache: false,
                },
            );
            task.shared.publish(RefinementUpdate {
                partial,
                estimate,
                from_cache: false,
            });
        }
    }
    if let Some(handles) = shared.obs.backends.get("refine") {
        handles.jobs.inc();
        handles.micros.add((total_seconds * 1e6) as u64);
    }
    Ok(cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_job;
    use qns_circuit::generators::ghz;
    use qns_noise::channels;

    fn spec() -> JobSpec {
        let noisy = NoisyCircuit::inject_random(ghz(3), &channels::depolarizing(1e-3), 2, 7);
        JobSpec::zeros(noisy)
    }

    #[test]
    fn submit_resolves_to_the_direct_backend_result() {
        let service = ServiceBuilder::new().workers(2).build();
        let spec = spec();
        let handle = service.submit(&spec).unwrap();
        let est = handle.wait().unwrap();

        // Bit-identical to running the routed engine directly.
        let job = spec.job();
        let idx = route_job(&default_engines(), &job, Route::Auto).unwrap();
        let direct = default_engines()[idx].expectation(&job).unwrap();
        assert_eq!(est.value.to_bits(), direct.value.to_bits());
        assert_eq!(est.backend, direct.backend);
    }

    #[test]
    fn repeat_submissions_hit_the_cache() {
        let service = ServiceBuilder::new().workers(1).build();
        let spec = spec();
        let first = service.submit(&spec).unwrap().wait().unwrap();
        let second = service.submit(&spec).unwrap().wait().unwrap();
        assert_eq!(first.value.to_bits(), second.value.to_bits());
        let stats = service.stats();
        assert_eq!(stats.executed, 1, "second submission must not re-run");
        assert_eq!(stats.cache_hits, 1);
        assert!(stats.cache_hit_rate() > 0.0);
    }

    #[test]
    fn fixed_and_auto_routes_cache_separately() {
        let service = ServiceBuilder::new().workers(1).build();
        let spec = spec();
        let auto = service.submit_routed(&spec, Route::Auto).unwrap();
        let fixed = service
            .submit_routed(&spec, Route::Fixed("density"))
            .unwrap();
        assert!(auto.wait().is_ok());
        assert_eq!(fixed.wait().unwrap().backend, "density");
        // Distinct cache keys ⇒ both routes executed.
        assert_eq!(service.stats().executed, 2);
    }

    #[test]
    fn router_errors_arrive_on_the_handle() {
        let service = ServiceBuilder::new().workers(1).build();
        let handle = service
            .submit_routed(&spec(), Route::Fixed("nonesuch"))
            .unwrap();
        assert!(matches!(
            handle.wait(),
            Err(QnsError::Unsupported {
                backend: "serve-router",
                ..
            })
        ));
        // Errors are not cached: the submission re-routes next time.
        assert_eq!(service.stats().executed, 0);
    }

    #[test]
    fn shutdown_drains_every_accepted_submission() {
        let service = ServiceBuilder::new().workers(2).build();
        let spec = spec();
        let handles: Vec<_> = (0..4)
            .map(|bits| {
                let noisy = spec.noisy().clone();
                let n = noisy.n_qubits();
                let s = JobSpec::new(noisy, InitialState::zeros(n), Observable::basis(n, bits))
                    .unwrap();
                service.submit(&s).unwrap()
            })
            .collect();
        service.shutdown();
        // shutdown() joined the workers, so every handle is resolved.
        for h in &handles {
            assert!(h.try_get().expect("drained before join").is_ok());
        }
    }

    #[test]
    fn shutdown_during_backpressure_resolves_every_handle() {
        // Regression: a submitter blocked on a full queue could wake
        // *after* the workers had drained the queue and exited on
        // shutdown, see queue space, and push a task no worker would
        // ever run — leaving its handle (and every dedup-joined
        // handle) hanging forever. Stress the interleaving: a tiny
        // queue, concurrent submitters, and a shutdown signal racing
        // the backpressure wait. Every accepted handle must resolve
        // once the workers have joined.
        for _ in 0..16 {
            let service = Arc::new(ServiceBuilder::new().workers(1).queue_capacity(1).build());
            let base = spec();
            let barrier = Arc::new(std::sync::Barrier::new(3));
            let submitters: Vec<_> = (0..2u64)
                .map(|t| {
                    let service = Arc::clone(&service);
                    let barrier = Arc::clone(&barrier);
                    let noisy = base.noisy().clone();
                    std::thread::spawn(move || {
                        let n = noisy.n_qubits();
                        barrier.wait();
                        let mut handles = Vec::new();
                        for bits in 4 * t..4 * (t + 1) {
                            let s = JobSpec::new(
                                noisy.clone(),
                                InitialState::zeros(n),
                                Observable::basis(n, bits as usize),
                            )
                            .unwrap();
                            match service.submit(&s) {
                                Ok(h) => handles.push(h),
                                Err(_) => break, // shutdown won the race
                            }
                        }
                        handles
                    })
                })
                .collect();
            barrier.wait();
            service.begin_shutdown();
            let handles: Vec<_> = submitters
                .into_iter()
                .flat_map(|t| t.join().unwrap())
                .collect();
            drop(service); // joins the workers (drop is the last Arc)
            for h in &handles {
                assert!(
                    h.try_get().is_some(),
                    "an accepted handle was stranded by shutdown"
                );
            }
        }
    }

    #[test]
    // The no-join fallback below narrates to stderr rather than failing.
    #[allow(clippy::print_stderr)]
    fn dedup_joins_do_not_count_as_cache_misses() {
        // Saturate a single worker so a second identical submission
        // joins the first in-flight execution instead of probing the
        // cache: the join must not log a miss.
        let service = ServiceBuilder::new().workers(1).build();
        let spec = spec();
        let a = service.submit(&spec).unwrap();
        let mut joined = false;
        for _ in 0..64 {
            service.submit(&spec).unwrap();
            let stats = service.stats();
            if stats.dedup_joins > 0 {
                joined = true;
                assert_eq!(
                    stats.cache_misses, 1,
                    "only the flight owner probes the cache"
                );
                break;
            }
        }
        a.wait().unwrap();
        // Tiny jobs can resolve before we resubmit; only assert when a
        // join actually happened (it does on any normally loaded box).
        if !joined {
            eprintln!("note: no dedup join observed; interleaving not exercised");
        }
    }

    #[test]
    fn backend_panic_resolves_the_flight_and_keeps_the_worker_alive() {
        struct PanickingBackend;
        impl qns_api::Backend for PanickingBackend {
            fn name(&self) -> &'static str {
                "panicker"
            }
            fn expectation(&self, _job: &ExpectationJob<'_>) -> Result<Estimate, QnsError> {
                panic!("deliberate test panic")
            }
        }

        let service = ServiceBuilder::new()
            .workers(1)
            .with_engine(Arc::new(PanickingBackend))
            .build();
        let spec = spec();
        let handle = service
            .submit_routed(&spec, Route::Fixed("panicker"))
            .unwrap();
        match handle.wait() {
            Err(QnsError::ExecutionPanicked { reason }) => {
                assert!(reason.contains("panicked"), "unexpected reason: {reason}")
            }
            other => panic!("expected a contained panic error, got {other:?}"),
        }
        // The sole worker survived the panic and still serves jobs.
        let est = service.submit_routed(&spec, Route::Auto).unwrap().wait();
        assert!(est.is_ok(), "worker died after a contained panic: {est:?}");
    }

    #[test]
    fn try_get_is_none_only_while_pending() {
        let service = ServiceBuilder::new().workers(1).build();
        let handle = service.submit(&spec()).unwrap();
        let est = handle.wait().unwrap();
        assert_eq!(
            handle.try_get().unwrap().unwrap().value.to_bits(),
            est.value.to_bits()
        );
    }
}
