#![warn(missing_docs)]
//! `qns-serve` — the serving layer over the unified [`qns_api`]
//! facade.
//!
//! The paper's pitch (Theorem 1) is that level-`l` truncation makes
//! noisy expectation values cheap enough to answer *many* queries.
//! This crate is the layer that actually serves them: a [`Service`]
//! accepts [`JobSpec`]s through a bounded queue, routes each to the
//! cheapest feasible engine, and hands back [`JobHandle`] futures —
//! while making sure identical work is never done twice:
//!
//! * **Fingerprinting** — jobs are keyed by their canonical
//!   [`qns_api::Fingerprint`], so structurally identical jobs compare
//!   equal however they were built.
//! * **Cost-based routing** — [`Route::Auto`] scores every registered
//!   engine with [`qns_api::Backend::cost_hint`] and skips engines
//!   whose [`qns_api::Backend::supports`] declines (the dense engine
//!   is never handed a job it would reject). [`Route::Fixed`] pins an
//!   engine by name.
//! * **Result caching** — completed estimates live in an
//!   [`cache::LruCache`] with hit/miss/eviction counters.
//! * **Single-flight dedup** — N concurrent submissions of one
//!   fingerprint trigger exactly one backend execution; the other
//!   N−1 handles join the in-flight computation.
//!
//! * **Anytime refinement** — [`Service::submit_refine`] answers
//!   within a caller's latency budget at the deepest affordable
//!   truncation level (with its Theorem-1 error bar), then keeps
//!   tightening the estimate level by level in the background,
//!   streaming every refinement through a [`RefinementHandle`].
//!   Per-level partial sums are cached so a resubmission resumes
//!   instead of restarting; dropping the handle cancels the
//!   escalation. See [`refine`] for the model.
//!
//! Every counter lives in a [`qns_obs::Registry`] the service owns:
//! [`ServiceStats`] is a typed view over it, [`Service::metrics_snapshot`]
//! exports the whole catalog (Prometheus text or JSON via
//! [`qns_obs::export`]), and [`Service::drain_events`] returns the
//! bounded journal of per-job lifecycle timelines (submit → route →
//! queue → execute/refine → resolve). The `serve_bench` and
//! `anytime_bench` harnesses turn these into `BENCH_serve.json` /
//! `BENCH_anytime.json`; see `docs/OBSERVABILITY.md` for the metric
//! catalog and determinism rules.
//!
//! # Example
//!
//! ```
//! use qns_serve::{JobSpec, Route, ServiceBuilder};
//! use qns_circuit::generators::ghz;
//! use qns_noise::{channels, NoisyCircuit};
//!
//! let service = ServiceBuilder::new().workers(2).cache_capacity(64).build();
//!
//! let noisy = NoisyCircuit::inject_random(ghz(4), &channels::depolarizing(1e-3), 2, 7);
//! let spec = JobSpec::zeros(noisy);
//!
//! // Submit the same job twice: one execution, two satisfied handles.
//! let a = service.submit(&spec)?;
//! let b = service.submit_routed(&spec, Route::Auto)?;
//! assert_eq!(a.wait()?.value.to_bits(), b.wait()?.value.to_bits());
//! let stats = service.stats();
//! assert_eq!(stats.executed, 1);
//! assert_eq!(stats.saved_executions(), 1);
//! # Ok::<(), qns_serve::QnsError>(())
//! ```

pub mod breaker;
pub mod cache;
pub mod faults;
mod obs;
pub mod refine;
pub mod router;
mod service;
pub mod sync;

pub use breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
pub use cache::{CacheCounters, LruCache};
pub use faults::{ChaosBackend, FaultAction, FaultPlan, FAILPOINTS};
pub use refine::{LevelSum, RefineRequest, RefinementHandle, RefinementUpdate};
pub use router::{route_job, route_job_masked, Route, SharedBackend};
pub use service::{
    default_engines, AdmissionPolicy, BackendStats, JobHandle, JobSpec, RetryPolicy, Service,
    ServiceBuilder, ServiceStats, TimeoutPolicy,
};
pub use sync::{OrderedCondvar, OrderedMutex, OrderedMutexGuard, LOCK_ORDER};

// Re-exported so service code can be written against one crate.
pub use qns_api::{Estimate, Fingerprint, PartialEstimate, QnsError};
// Observability vocabulary callers of `Service::metrics_snapshot` /
// `Service::drain_events` consume (see `docs/OBSERVABILITY.md`).
pub use qns_obs::{DrainedEvents, Event, EventKind, MetricsSnapshot};
