//! End-to-end observability invariants over a mixed expect + refine
//! workload:
//!
//! * **Reconciliation** — per-stage histogram totals match the
//!   [`qns_serve::ServiceStats`] job counts exactly (queue-wait and
//!   end-to-end sample counts, per-level timings, per-backend jobs).
//! * **Timelines** — the drained journal reconstructs every job's full
//!   lifecycle in order.
//! * **Determinism** — exporting the same quiesced registry twice is
//!   byte-identical, for both Prometheus text and JSON.
//! * **Zero-alloc steady state** — once label children are warm, a
//!   second workload leaves the registry's allocation-event counter
//!   flat.

use qns_circuit::generators::ghz;
use qns_noise::{channels, NoisyCircuit};
use qns_obs::export;
use qns_serve::{EventKind, JobSpec, RefineRequest, ServiceBuilder};

fn spec_with_observable(bits: usize) -> JobSpec {
    let noisy = NoisyCircuit::inject_random(ghz(4), &channels::depolarizing(1e-3), 2, 7);
    let n = noisy.n_qubits();
    JobSpec::new(
        noisy,
        qns_api::InitialState::zeros(n),
        qns_api::Observable::basis(n, bits),
    )
    .unwrap()
}

fn refine_spec() -> JobSpec {
    JobSpec::zeros(NoisyCircuit::inject_random(
        ghz(4),
        &channels::depolarizing(1e-3),
        2,
        11,
    ))
}

/// One workload round: `one_shots` distinct jobs, a repeat of the
/// first (cache hit), and two refinements of the same job (the second
/// resumes from the partial-sum cache). Sequential waits, so no dedup
/// joins muddy the accounting.
fn run_round(service: &qns_serve::Service, one_shots: usize, bits_base: usize) {
    for bits in 0..one_shots {
        service
            .submit(&spec_with_observable(bits_base + bits))
            .unwrap()
            .wait()
            .unwrap();
    }
    service
        .submit(&spec_with_observable(bits_base))
        .unwrap()
        .wait()
        .unwrap();
    let a = service
        .submit_refine(&refine_spec(), &RefineRequest::new())
        .unwrap();
    a.wait_final().unwrap();
    let b = service
        .submit_refine(&refine_spec(), &RefineRequest::new())
        .unwrap();
    b.wait_final().unwrap();
}

#[test]
fn histograms_reconcile_and_timelines_reconstruct() {
    let service = ServiceBuilder::new().workers(2).build();
    let n = refine_spec().noisy().noise_count();
    run_round(&service, 5, 0);

    let stats = service.stats();
    assert_eq!(stats.executed, 5);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.refinements, 2);
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.dedup_joins, 0, "sequential waits: no joins");

    // Per-stage histogram totals reconcile exactly with the job
    // counts: every executed job and every refinement was dequeued
    // once (cache hits never enter the queue) and resolved once.
    let snap = service.metrics_snapshot();
    let dequeued = stats.executed + stats.refinements;
    let queue_wait = snap.histogram_value("qns_serve_queue_wait_micros").unwrap();
    assert_eq!(queue_wait.count(), dequeued);
    let e2e = snap
        .histogram_value("qns_serve_e2e_latency_micros")
        .unwrap();
    assert_eq!(e2e.count(), dequeued, "cache hits contribute no e2e sample");
    // Fresh levels: each timed once, counted once per level label.
    let fresh: u64 = stats.refine_levels_completed.values().sum();
    assert_eq!(fresh, (n + 1) as u64, "run a computed every level fresh");
    assert_eq!(stats.refine_levels_from_cache, (n + 1) as u64);
    let level_micros = snap
        .histogram_value("qns_serve_refine_level_micros")
        .unwrap();
    assert_eq!(
        level_micros.count(),
        fresh,
        "one timing sample per fresh level"
    );
    // Per-backend jobs partition the executed count ("refine" is the
    // separate refinement aggregate).
    let backend_jobs: u64 = stats
        .per_backend
        .iter()
        .filter(|(name, _)| **name != "refine")
        .map(|(_, b)| b.jobs)
        .sum();
    assert_eq!(backend_jobs, stats.executed);
    assert_eq!(stats.per_backend["refine"].jobs, 2);
    // Counter values in the export match the stats view (same source).
    assert_eq!(
        snap.counter_value("qns_serve_jobs_submitted_total"),
        Some(stats.submitted)
    );
    assert_eq!(snap.counter_value("qns_serve_cache_hits_total"), Some(1));
    // The submission window is latched and ordered.
    let first = snap
        .gauge_value("qns_serve_window_first_submit_micros")
        .unwrap();
    let last = snap
        .gauge_value("qns_serve_window_last_resolve_micros")
        .unwrap();
    assert!(first.value >= 1, "latch stores max(v, 1)");
    assert!(last.value >= first.value);

    // The drained journal reconstructs each job's full timeline.
    let drained = service.drain_events();
    assert_eq!(drained.dropped, 0, "default journal holds this workload");
    let timelines = drained.timelines();
    assert_eq!(
        timelines.len() as u64,
        stats.submitted,
        "one timeline per submission"
    );
    let mut cache_hits = 0u64;
    let mut executed = 0u64;
    let mut refined = 0u64;
    for (job, events) in &timelines {
        let kinds: Vec<&EventKind> = events.iter().map(|e| &e.kind).collect();
        assert_eq!(
            *kinds[0],
            EventKind::Submitted,
            "job {job} must start at Submitted"
        );
        let pos = |pred: fn(&EventKind) -> bool| kinds.iter().position(|k| pred(k));
        let resolved = pos(|k| matches!(k, EventKind::Resolved { .. }))
            .unwrap_or_else(|| panic!("job {job} never resolved: {kinds:?}"));
        assert_eq!(
            resolved,
            kinds.len() - 1,
            "Resolved terminates the timeline"
        );
        if kinds.iter().any(|k| matches!(k, EventKind::CacheHit)) {
            cache_hits += 1;
            assert_eq!(kinds.len(), 3, "cache hit: Submitted, CacheHit, Resolved");
            continue;
        }
        let enq = pos(|k| matches!(k, EventKind::Enqueued { .. })).unwrap();
        let deq = pos(|k| matches!(k, EventKind::Dequeued { .. })).unwrap();
        assert!(
            enq < deq && deq < resolved,
            "queue stages in order: {kinds:?}"
        );
        if let Some(refine) = pos(|k| matches!(k, EventKind::RefineSubmitted { .. })) {
            refined += 1;
            assert!(refine < enq);
            let levels = kinds
                .iter()
                .filter(|k| matches!(k, EventKind::RefineLevel { .. }))
                .count();
            assert_eq!(levels, n + 1, "every level published an event");
        } else {
            executed += 1;
            let routed = pos(|k| matches!(k, EventKind::Routed { .. })).unwrap();
            let exec = pos(|k| matches!(k, EventKind::Executed { .. })).unwrap();
            assert!(deq < routed && routed < exec && exec < resolved);
        }
    }
    assert_eq!(cache_hits, stats.cache_hits);
    assert_eq!(executed, stats.executed);
    assert_eq!(refined, stats.refinements);
}

#[test]
fn quiesced_exports_are_byte_deterministic() {
    let service = ServiceBuilder::new().workers(2).build();
    run_round(&service, 3, 0);
    // Workers are idle (every handle waited); the registry is quiesced.
    let prom_a = export::to_prometheus(&service.metrics_snapshot());
    let json_a = export::to_json(&service.metrics_snapshot());
    let prom_b = export::to_prometheus(&service.metrics_snapshot());
    let json_b = export::to_json(&service.metrics_snapshot());
    assert_eq!(prom_a, prom_b);
    assert_eq!(json_a, json_b);
    // And the text form parses back to the stats totals.
    let series = export::parse_prometheus(&prom_a).unwrap();
    let stats = service.stats();
    assert_eq!(
        series["qns_serve_jobs_submitted_total"],
        stats.submitted as f64
    );
    assert_eq!(
        series["qns_serve_jobs_executed_total"],
        stats.executed as f64
    );
    assert_eq!(
        series["qns_serve_refinements_total"],
        stats.refinements as f64
    );
}

#[test]
fn steady_state_recording_is_allocation_free() {
    let service = ServiceBuilder::new().workers(2).build();
    let registry = service.metrics_registry();
    // Warm-up round: registers every label child this workload touches
    // (backend names, refine level labels).
    run_round(&service, 3, 0);
    let warm = registry.allocation_events();
    // Steady state: a fresh batch of distinct jobs (basis observables
    // 8..10, disjoint from warm-up's 0..2) plus refinements records
    // into warm handles only.
    run_round(&service, 3, 8);
    assert_eq!(
        registry.allocation_events(),
        warm,
        "hot-path recording allocated in steady state"
    );
}
