//! The anytime-serving contract of `Service::submit_refine`:
//!
//! * **Deadline answer** — a tight budget is answered at the deepest
//!   affordable level, with its Theorem-1 bound, having executed *no*
//!   pattern beyond that level (`patterns_done` is exactly the level's
//!   planned pattern count).
//! * **Bitwise escalation** — every streamed level-`l` estimate is
//!   bit-identical to a fresh full run at level `l` (the acceptance
//!   criterion of the subsystem).
//! * **Resume** — resubmitting the same job replays cached per-level
//!   partial sums instead of recomputing them, bit-identically.
//! * **Degradation** — zero/negative/infinite deadlines clamp cleanly;
//!   `NaN` is rejected; refine traffic never pollutes the result cache.
//! * **Cancellation** — explicit cancel and handle drop both stop the
//!   escalation and are visible in the stats.

use qns_api::{ApproxBackend, ApproxOptions, Backend, Estimate, ExpectationJob, QnsError};
use qns_circuit::generators::ghz;
use qns_core::bounds;
use qns_noise::{channels, NoisyCircuit};
use qns_serve::{JobSpec, RefineRequest, Route, Service, ServiceBuilder, SharedBackend};
use std::sync::{Arc, Condvar, Mutex};

/// 4 noise sites: per-level pattern costs 1, 12, 54, 108, 81.
fn spec() -> JobSpec {
    JobSpec::zeros(NoisyCircuit::inject_random(
        ghz(3),
        &channels::depolarizing(5e-3),
        4,
        13,
    ))
}

fn n_sites(spec: &JobSpec) -> usize {
    spec.noisy().noise_count()
}

#[test]
fn tight_budget_answers_early_and_escalations_match_fresh_runs_bitwise() {
    let service = ServiceBuilder::new().workers(1).build();
    let spec = spec();
    let n = n_sites(&spec);

    // Budget covers exactly levels 0..=1 (1 + 3n = 13 patterns).
    let req = RefineRequest::new().with_pattern_budget(bounds::planned_patterns(n, 1));
    let handle = service.submit_refine(&spec, &req).unwrap();
    assert_eq!(handle.first_level(), 1);
    assert_eq!(handle.final_level(), n);

    // The deadline answer arrives at level 1 with its Theorem-1 bound,
    // and `patterns_done` proves no level-2 pattern was executed for
    // it.
    let first = handle.wait_first().unwrap();
    assert_eq!(first.partial.level, 1);
    assert_eq!(
        first.partial.patterns_done as u128,
        bounds::planned_patterns(n, 1)
    );
    assert!(first.estimate.error_bound.is_some());
    assert_eq!(first.estimate.level, Some(1));
    assert!(!first.estimate.is_exact());

    // Every escalated level is bit-identical to a fresh full run at
    // that level under the same options.
    for level in 0..=n {
        let update = handle.wait_level(level).unwrap();
        let direct = ApproxBackend::level(level)
            .expectation(&spec.job())
            .unwrap();
        assert_eq!(
            update.estimate.value.to_bits(),
            direct.value.to_bits(),
            "level {level} must match a fresh run bitwise"
        );
        assert_eq!(update.estimate.error_bound, direct.error_bound);
    }

    // The final update carries the full sum, exactly.
    let last = handle.wait_final().unwrap();
    assert_eq!(last.partial.level, n);
    assert!(last.estimate.is_exact());

    // Theorem-1 bounds tighten monotonically across the stream.
    let updates = handle.updates();
    assert_eq!(updates.len(), n + 1);
    for pair in updates.windows(2) {
        assert!(pair[1].partial.theorem1_bound <= pair[0].partial.theorem1_bound);
    }
    // Zero up to the fp residue of the bound's difference of
    // near-equal products.
    assert!(updates[n].partial.theorem1_bound <= 1e-9);
}

#[test]
fn resubmission_resumes_from_the_partial_sum_cache_bitwise() {
    let service = ServiceBuilder::new().workers(1).build();
    let spec = spec();
    let n = n_sites(&spec);

    // First pass computes everything fresh.
    let fresh = service.submit_refine(&spec, &RefineRequest::new()).unwrap();
    let fresh_updates = {
        fresh.wait_final().unwrap();
        fresh.updates()
    };
    assert!(fresh_updates.iter().all(|u| !u.from_cache));

    // Second pass: even a zero pattern budget affords the final level,
    // because every level replays for free from the cache.
    let resumed = service
        .submit_refine(&spec, &RefineRequest::new().with_pattern_budget(0))
        .unwrap();
    assert_eq!(resumed.first_level(), n, "cached levels are free");
    let resumed_updates = {
        resumed.wait_final().unwrap();
        resumed.updates()
    };
    assert_eq!(resumed_updates.len(), n + 1);
    for (a, b) in fresh_updates.iter().zip(&resumed_updates) {
        assert!(b.from_cache);
        assert_eq!(
            a.estimate.value.to_bits(),
            b.estimate.value.to_bits(),
            "resumed level {} must be bit-identical",
            b.partial.level
        );
    }

    let stats = service.stats();
    assert_eq!(stats.refinements, 2);
    assert_eq!(stats.partial_cache.hits, 1, "second run resumed");
    assert_eq!(stats.partial_cache.misses, 1, "first run found nothing");
    assert_eq!(stats.refine_levels_from_cache, (n + 1) as u64);
    let fresh_levels: u64 = stats.refine_levels_completed.values().sum();
    assert_eq!(fresh_levels, (n + 1) as u64, "each level computed once");
    assert!(stats.partial_cache_hit_rate() > 0.0);
}

#[test]
fn degenerate_budgets_clamp_to_the_cheapest_level_and_nan_is_rejected() {
    let spec = spec();
    let n = n_sites(&spec);

    let first_level_for = |req: &RefineRequest| {
        let service = ServiceBuilder::new().workers(1).build();
        let handle = service.submit_refine(&spec, req).unwrap();
        let first = handle.wait_first().unwrap();
        assert_eq!(first.partial.level, handle.first_level());
        handle.first_level()
    };

    // Zero, negative and zero-pattern budgets degrade to level 0 —
    // never a panic, never a busy loop, and the answer still carries
    // its bound.
    assert_eq!(
        first_level_for(&RefineRequest::new().with_deadline_secs(0.0)),
        0
    );
    assert_eq!(
        first_level_for(&RefineRequest::new().with_deadline_secs(-7.5)),
        0
    );
    assert_eq!(
        first_level_for(&RefineRequest::new().with_pattern_budget(0)),
        0
    );
    // An unbounded deadline answers at the final level directly.
    assert_eq!(
        first_level_for(&RefineRequest::new().with_deadline_secs(f64::INFINITY)),
        n
    );

    // NaN deadlines are a clean error at submission.
    let service = ServiceBuilder::new().workers(1).build();
    let err = service
        .submit_refine(&spec, &RefineRequest::new().with_deadline_secs(f64::NAN))
        .unwrap_err();
    assert!(matches!(err, QnsError::InvalidJob { .. }));

    // A max_level cap stops the escalation early, truncated estimate
    // and bound intact.
    let handle = service
        .submit_refine(&spec, &RefineRequest::new().with_max_level(2))
        .unwrap();
    let last = handle.wait_final().unwrap();
    assert_eq!(last.partial.level, 2);
    assert!(!last.estimate.is_exact());
    assert!(last.partial.theorem1_bound > 0.0);

    // refine options whose term budget cannot afford even level 0 are
    // a clean TermBudgetExceeded at submission.
    let starved = ServiceBuilder::new()
        .workers(1)
        .refine_options(ApproxOptions::default().with_max_terms(0))
        .build();
    assert!(matches!(
        starved.submit_refine(&spec, &RefineRequest::new()),
        Err(QnsError::TermBudgetExceeded { .. })
    ));

    // A term budget that only affords level 1 caps the final level.
    let capped = ServiceBuilder::new()
        .workers(1)
        .refine_options(ApproxOptions::default().with_max_terms(bounds::planned_patterns(n, 1)))
        .build();
    let handle = capped.submit_refine(&spec, &RefineRequest::new()).unwrap();
    assert_eq!(handle.final_level(), 1);
    assert_eq!(handle.wait_final().unwrap().partial.level, 1);
}

#[test]
fn refinements_and_one_shot_submissions_never_share_caches() {
    // Regression for the fingerprint audit: the partial-sum cache keys
    // are domain-separated from the result-cache keys, and refine
    // results are never inserted into the result cache — so a job
    // refined to the full level must still *execute* when submitted
    // normally, and vice versa.
    let service = ServiceBuilder::new().workers(1).build();
    let spec = spec();

    let refined = service
        .submit_refine(&spec, &RefineRequest::new())
        .unwrap()
        .wait_final()
        .unwrap();
    assert!(refined.estimate.is_exact());

    let est = service
        .submit_routed(&spec, Route::Fixed("approx"))
        .unwrap()
        .wait()
        .unwrap();
    let stats = service.stats();
    assert_eq!(stats.executed, 1, "the one-shot job really executed");
    assert_eq!(
        stats.cache_hits, 0,
        "refine results must not answer submits"
    );
    assert_eq!(est.backend, "approx");

    // And the reverse: a refinement after a one-shot run still
    // computes its levels fresh (the result cache holds whole
    // estimates, not per-level sums — and this job's sums are already
    // in the partial cache from the first refinement, so use a
    // different observable to prove the point).
    let n = spec.noisy().n_qubits();
    let other = JobSpec::new(
        spec.noisy().clone(),
        qns_api::InitialState::zeros(n),
        qns_api::Observable::basis(n, 1),
    )
    .unwrap();
    service.submit(&other).unwrap().wait().unwrap();
    let before = service
        .stats()
        .refine_levels_completed
        .values()
        .sum::<u64>();
    service
        .submit_refine(&other, &RefineRequest::new())
        .unwrap()
        .wait_final()
        .unwrap();
    let after = service
        .stats()
        .refine_levels_completed
        .values()
        .sum::<u64>();
    assert!(after > before, "the refinement computed fresh levels");
}

/// A backend that blocks until released — pins the sole worker so a
/// queued refinement provably has not started yet.
struct GateBackend {
    inner: ApproxBackend,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GateBackend {
    fn new(gate: Arc<(Mutex<bool>, Condvar)>) -> Self {
        GateBackend {
            inner: ApproxBackend::level(1),
            gate,
        }
    }

    fn open(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (lock, cv) = &**gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
}

impl Backend for GateBackend {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn expectation(&self, job: &ExpectationJob<'_>) -> Result<Estimate, QnsError> {
        let (lock, cv) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cv.wait(open).unwrap();
        }
        drop(open);
        self.inner.expectation(job)
    }
}

fn wait_refines_drained(service: &Service) {
    for _ in 0..500 {
        if service.stats().refine_active == 0 {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("refinement never drained: {:?}", service.stats());
}

#[test]
fn explicit_cancel_stops_the_refinement_before_it_starts() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let service = ServiceBuilder::new()
        .workers(1)
        .with_engine(Arc::new(GateBackend::new(Arc::clone(&gate))) as SharedBackend)
        .build();
    let spec = spec();

    // Pin the sole worker, queue the refinement behind it, cancel.
    let pinned = service.submit_routed(&spec, Route::Fixed("gate")).unwrap();
    let handle = service.submit_refine(&spec, &RefineRequest::new()).unwrap();
    handle.cancel();
    GateBackend::open(&gate);
    pinned.wait().unwrap();

    // The refinement stopped before computing any level.
    match handle.wait_final() {
        Err(QnsError::InvalidJob { reason }) => {
            assert!(reason.contains("cancelled"), "unexpected reason: {reason}")
        }
        other => panic!("expected a cancellation error, got {other:?}"),
    }
    assert!(handle.is_done());
    assert!(handle.latest().is_none());

    wait_refines_drained(&service);
    let stats = service.stats();
    assert_eq!(stats.refine_cancelled, 1);
    assert_eq!(stats.refine_levels_completed.values().sum::<u64>(), 0);
    assert!(stats.refine_high_water >= 1);
}

#[test]
fn dropping_every_handle_cancels_the_refinement() {
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let service = ServiceBuilder::new()
        .workers(1)
        .with_engine(Arc::new(GateBackend::new(Arc::clone(&gate))) as SharedBackend)
        .build();
    let spec = spec();

    let pinned = service.submit_routed(&spec, Route::Fixed("gate")).unwrap();
    let handle = service.submit_refine(&spec, &RefineRequest::new()).unwrap();
    drop(handle); // the client walked away
    GateBackend::open(&gate);
    pinned.wait().unwrap();

    wait_refines_drained(&service);
    let stats = service.stats();
    assert_eq!(stats.refine_cancelled, 1, "abandoned refinement cancelled");
    assert_eq!(stats.refine_levels_completed.values().sum::<u64>(), 0);
}
