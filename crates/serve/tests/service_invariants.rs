//! The serving-layer invariants the subsystem is built around:
//!
//! * **Single-flight** — K concurrent submissions of one fingerprint
//!   perform exactly one backend execution, and all K handles observe
//!   a result bit-identical to a direct `Backend::expectation` call.
//! * **Fingerprint stability** — specs built independently from
//!   structurally identical inputs share cache entries.
//! * **LRU semantics** — eviction follows recency through the service,
//!   not just in the cache unit tests.
//! * **Routing safety** — `Route::Auto` never lands on an engine that
//!   reports the job `Unsupported`.

use qns_api::{ApproxBackend, Backend, DensityBackend, Estimate, ExpectationJob, QnsError};
use qns_circuit::generators::{ghz, qaoa_grid_random};
use qns_noise::{channels, NoisyCircuit};
use qns_serve::{JobSpec, ServiceBuilder, SharedBackend};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A deterministic backend that counts its executions and dawdles a
/// little, so concurrent duplicate submissions genuinely overlap.
struct CountingBackend {
    inner: ApproxBackend,
    executions: Arc<AtomicUsize>,
    delay: std::time::Duration,
}

impl CountingBackend {
    fn new(executions: Arc<AtomicUsize>, delay_ms: u64) -> Self {
        CountingBackend {
            inner: ApproxBackend::level(2),
            executions,
            delay: std::time::Duration::from_millis(delay_ms),
        }
    }
}

impl Backend for CountingBackend {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn expectation(&self, job: &ExpectationJob<'_>) -> Result<Estimate, QnsError> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        self.inner.expectation(job)
    }
}

fn noisy(seed: u64) -> NoisyCircuit {
    NoisyCircuit::inject_random(ghz(4), &channels::depolarizing(1e-3), 2, seed)
}

#[test]
fn concurrent_identical_submissions_execute_exactly_once() {
    const K: usize = 16;
    let executions = Arc::new(AtomicUsize::new(0));
    let engine: SharedBackend = Arc::new(CountingBackend::new(Arc::clone(&executions), 30));
    let service = Arc::new(
        ServiceBuilder::new()
            .workers(4)
            .engines(vec![engine])
            .build(),
    );

    // K threads submit the same (independently rebuilt) job at once.
    let values: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let spec = JobSpec::zeros(noisy(7));
                    service.submit(&spec).unwrap().wait().unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap().value.to_bits())
            .collect()
    });

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "single-flight: K concurrent identical jobs, one execution"
    );
    // Every handle saw the same bits as a direct backend call.
    let spec = JobSpec::zeros(noisy(7));
    let direct = ApproxBackend::level(2)
        .expectation(&spec.job())
        .unwrap()
        .value
        .to_bits();
    for v in values {
        assert_eq!(v, direct);
    }

    let stats = service.stats();
    assert_eq!(stats.submitted, K as u64);
    assert_eq!(stats.executed, 1);
    assert_eq!(
        stats.saved_executions(),
        (K - 1) as u64,
        "K−1 submissions served by join or cache: {stats:?}"
    );
}

#[test]
fn distinct_jobs_all_execute_and_agree_with_direct_runs() {
    let service = ServiceBuilder::new().workers(3).build();
    let specs: Vec<JobSpec> = (0..6).map(spec_with_observable).collect();
    let handles: Vec<_> = specs.iter().map(|s| service.submit(s).unwrap()).collect();
    for (spec, handle) in specs.iter().zip(handles) {
        let est = handle.wait().unwrap();
        // Replay on the engine the service reports it used.
        let direct = qns_serve::default_engines()
            .iter()
            .find(|e| e.name() == est.backend)
            .expect("service used a registered engine")
            .expectation(&spec.job())
            .unwrap();
        assert_eq!(est.value.to_bits(), direct.value.to_bits());
    }
    assert_eq!(service.stats().executed, 6);
}

#[test]
fn rebuilt_identical_specs_share_one_cache_entry() {
    let service = ServiceBuilder::new().workers(1).build();
    // Two constructions from scratch — different allocations, same
    // structure, same fingerprint.
    let a = JobSpec::zeros(NoisyCircuit::inject_random(
        qaoa_grid_random(2, 3, 2, 5),
        &channels::amplitude_damping(0.02),
        3,
        9,
    ));
    let b = JobSpec::zeros(NoisyCircuit::inject_random(
        qaoa_grid_random(2, 3, 2, 5),
        &channels::amplitude_damping(0.02),
        3,
        9,
    ));
    assert_eq!(a.fingerprint(), b.fingerprint());

    let first = service.submit(&a).unwrap().wait().unwrap();
    let second = service.submit(&b).unwrap().wait().unwrap();
    assert_eq!(first.value.to_bits(), second.value.to_bits());
    let stats = service.stats();
    assert_eq!(stats.executed, 1, "spec b must be a pure cache hit");
    assert_eq!(stats.cache_hits, 1);
}

/// Specs over one circuit that provably differ: distinct observables.
/// (Distinct injection *seeds* can legitimately land on identical
/// noise placements and thus identical fingerprints.)
fn spec_with_observable(bits: usize) -> JobSpec {
    let circuit = noisy(7);
    let n = circuit.n_qubits();
    JobSpec::new(
        circuit,
        qns_api::InitialState::zeros(n),
        qns_api::Observable::basis(n, bits),
    )
    .unwrap()
}

#[test]
fn lru_eviction_preserves_recently_used_entries_through_the_service() {
    // Capacity 2: submit jobs A, B, re-touch A, then C. B is the LRU
    // victim; A must still answer from cache.
    let service = ServiceBuilder::new().workers(1).cache_capacity(2).build();
    let spec_of = spec_with_observable;

    service.submit(&spec_of(1)).unwrap().wait().unwrap(); // A
    service.submit(&spec_of(2)).unwrap().wait().unwrap(); // B
    service.submit(&spec_of(1)).unwrap().wait().unwrap(); // A again: hit
    service.submit(&spec_of(3)).unwrap().wait().unwrap(); // C evicts B
    let before = service.stats();
    assert_eq!(before.cache_evictions, 1);

    service.submit(&spec_of(1)).unwrap().wait().unwrap(); // A: still cached
    let after_a = service.stats();
    assert_eq!(after_a.executed, before.executed, "A was not re-executed");
    assert_eq!(after_a.cache_hits, before.cache_hits + 1);

    service.submit(&spec_of(2)).unwrap().wait().unwrap(); // B: evicted, re-runs
    let after_b = service.stats();
    assert_eq!(after_b.executed, before.executed + 1, "B was re-executed");
}

#[test]
fn auto_route_skips_engines_that_reject_the_job() {
    // A dense engine that rejects everything, registered FIRST, plus a
    // real engine: Auto must never hand the job to the rejecting one.
    let service = ServiceBuilder::new()
        .workers(1)
        .engines(vec![
            Arc::new(DensityBackend::new().with_max_qubits(1)) as SharedBackend,
            Arc::new(ApproxBackend::level(2)) as SharedBackend,
        ])
        .build();
    let est = service
        .submit(&JobSpec::zeros(noisy(4)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(est.backend, "approx");
    let stats = service.stats();
    assert_eq!(stats.per_backend.get("density"), None);
    assert_eq!(stats.per_backend["approx"].jobs, 1);
    assert!(stats.per_backend["approx"].seconds >= 0.0);
}

#[test]
fn shutdown_resolves_handles_that_joined_a_backpressured_flight() {
    // Regression: a submitter blocked on queue space owns a flight
    // other submissions can dedup-join; shutting down while it waits
    // must resolve that flight (with the shutdown error), not abandon
    // it — or the joined handles would hang forever.
    let executions = Arc::new(AtomicUsize::new(0));
    let engine: SharedBackend = Arc::new(CountingBackend::new(Arc::clone(&executions), 400));
    let service = Arc::new(
        ServiceBuilder::new()
            .workers(1)
            .queue_capacity(1)
            .engines(vec![engine])
            .build(),
    );

    // Fill the worker (job 0) and the queue (job 1).
    let running = service.submit(&spec_with_observable(0)).unwrap();
    let queued = service.submit(&spec_with_observable(1)).unwrap();
    // Job 2 blocks awaiting queue space; job 2's twin joins its flight.
    let (blocked, joined) = {
        let s1 = Arc::clone(&service);
        let blocked = std::thread::spawn(move || s1.submit(&spec_with_observable(2)));
        // Give the blocked submitter time to register its flight.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let joined = service.submit(&spec_with_observable(2)).unwrap();
        (blocked, joined)
    };

    std::thread::sleep(std::time::Duration::from_millis(100));
    // Signal shutdown while the submitter is (in the usual
    // interleaving) still blocked on queue space.
    service.begin_shutdown();

    // The two accepted jobs completed; the backpressured submission
    // errored — and so did every handle that joined its flight, rather
    // than hanging.
    assert!(running.wait().is_ok());
    assert!(queued.wait().is_ok());
    let blocked = blocked.join().unwrap();
    match blocked {
        // The usual interleaving: still waiting for space at shutdown.
        Err(QnsError::InvalidJob { .. }) => {
            assert!(joined.wait().is_err(), "joined handle must resolve");
        }
        // Scheduling got job 2 queued before shutdown: it then drained.
        Ok(handle) => {
            assert!(handle.wait().is_ok());
            assert!(joined.wait().is_ok());
        }
        Err(e) => panic!("unexpected submit error: {e}"),
    }
}

#[test]
fn refinement_counters_stay_coherent_through_a_mixed_workload() {
    // Satellite invariant: the anytime counters in the stats snapshot
    // must reconcile with each other — fresh + cached level
    // completions account for every published update, the active gauge
    // drains to zero, and refine traffic leaves the one-shot counters
    // untouched.
    let service = ServiceBuilder::new().workers(2).build();
    let spec = JobSpec::zeros(noisy(11));
    let n = spec.noisy().noise_count();

    // One fresh refinement, one resumed, interleaved with one-shots.
    let a = service
        .submit_refine(&spec, &qns_serve::RefineRequest::new())
        .unwrap();
    service
        .submit(&spec_with_observable(5))
        .unwrap()
        .wait()
        .unwrap();
    a.wait_final().unwrap();
    let b = service
        .submit_refine(&spec, &qns_serve::RefineRequest::new())
        .unwrap();
    b.wait_final().unwrap();

    let stats = service.stats();
    assert_eq!(stats.refinements, 2);
    assert_eq!(stats.refine_active, 0, "both refinements drained");
    assert!(stats.refine_high_water >= 1);
    assert_eq!(stats.refine_cancelled, 0);
    // Every level published exactly once fresh (run a) and once from
    // cache (run b).
    let fresh: u64 = stats.refine_levels_completed.values().sum();
    assert_eq!(fresh, (n + 1) as u64);
    assert_eq!(stats.refine_levels_from_cache, (n + 1) as u64);
    // Cache accounting: one miss (a), one hit (b).
    assert_eq!(stats.partial_cache.hits + stats.partial_cache.misses, 2);
    assert_eq!(stats.partial_cache_hit_rate(), 0.5);
    // Refinements aggregate under the "refine" pseudo-backend and do
    // not inflate the one-shot execution counter.
    assert_eq!(stats.per_backend["refine"].jobs, 2);
    assert_eq!(stats.executed, 1, "only the one-shot job executed");
    // submitted counts refinements too.
    assert_eq!(stats.submitted, 3);
}

#[test]
fn queue_high_water_and_backpressure_are_observable() {
    // One worker, tiny queue: the high-water mark must reach the
    // configured bound while submissions keep succeeding (blocking,
    // not failing, when full).
    let service = ServiceBuilder::new().workers(1).queue_capacity(2).build();
    let handles: Vec<_> = (0..8)
        .map(|bits| service.submit(&spec_with_observable(bits)).unwrap())
        .collect();
    for h in handles {
        h.wait().unwrap();
    }
    let stats = service.stats();
    assert!(stats.queue_high_water <= 2, "bounded: {stats:?}");
    assert!(stats.queue_high_water >= 1);
    assert_eq!(stats.executed, 8);
}
