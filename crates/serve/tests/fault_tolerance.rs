//! The fault-tolerance contract of the serving layer, exercised under
//! deterministic (seeded, replayable) chaos:
//!
//! * **Exactly-once resolution** — under any seeded schedule of
//!   injected errors, panics and delays, every accepted handle
//!   resolves exactly once, no worker dies permanently, and the
//!   single-flight table ends empty.
//! * **Replay** — the same chaos seed produces bit-identical results.
//! * **Retry/failover** — retryable failures re-route to the
//!   next-cheapest feasible engine; circuit breakers open under
//!   sustained failure and re-close after their cooldown.
//! * **Timeouts** — the deadline watchdog resolves handles of hung
//!   backends with `QnsError::Timeout`; refinements cancel
//!   cooperatively and keep their published levels.
//! * **Load shedding / degradation** — admission control sheds with
//!   `QnsError::Overloaded` and degrades refinements to shallower
//!   first levels whose Theorem-1-bounded answers stay bit-identical
//!   to fresh runs at the served level.
//! * **EWMA guard** — fault-stalled refinement levels never poison the
//!   deadline-conversion throughput estimate.
//!
//! With no fault plan in play, results stay byte-identical to an
//! unchaosed service (the zero-cost contract).

use qns_api::{ApproxBackend, Backend, Estimate, ExpectationJob, QnsError};
use qns_circuit::generators::ghz;
use qns_noise::{channels, NoisyCircuit};
use qns_serve::{
    faults, AdmissionPolicy, BreakerPolicy, BreakerState, ChaosBackend, FaultPlan, JobSpec,
    RefineRequest, RetryPolicy, Route, ServiceBuilder, SharedBackend, TimeoutPolicy,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Serializes tests that install the process-global fault plan (the
/// per-instance `ChaosBackend` plans need no such care).
static GLOBAL_PLAN: Mutex<()> = Mutex::new(());

fn spec_with_observable(bits: usize) -> JobSpec {
    let noisy = NoisyCircuit::inject_random(ghz(3), &channels::depolarizing(5e-3), 3, 11);
    let n = noisy.n_qubits();
    JobSpec::new(
        noisy,
        qns_api::InitialState::zeros(n),
        qns_api::Observable::basis(n, bits % (1 << n)),
    )
    .unwrap()
}

fn refine_spec() -> JobSpec {
    JobSpec::zeros(NoisyCircuit::inject_random(
        ghz(3),
        &channels::depolarizing(5e-3),
        4,
        13,
    ))
}

/// A backend that fails its first `failures` executions with a
/// retryable error, then succeeds by delegating to an `ApproxBackend`.
struct FlakyBackend {
    inner: ApproxBackend,
    failures: usize,
    calls: AtomicUsize,
    cost: u128,
}

impl FlakyBackend {
    fn new(failures: usize, cost: u128) -> FlakyBackend {
        FlakyBackend {
            inner: ApproxBackend::level(1),
            failures,
            calls: AtomicUsize::new(0),
            cost,
        }
    }
}

impl Backend for FlakyBackend {
    fn name(&self) -> &'static str {
        "flaky"
    }
    fn expectation(&self, job: &ExpectationJob<'_>) -> Result<Estimate, QnsError> {
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.failures {
            return Err(QnsError::ExecutionPanicked {
                reason: "flaky backend failing on purpose".into(),
            });
        }
        self.inner.expectation(job)
    }
    fn cost_hint(&self, _job: &ExpectationJob<'_>) -> Option<u128> {
        Some(self.cost)
    }
}

/// A backend that sleeps long enough to overrun any reasonable test
/// deadline before answering.
struct HangingBackend {
    sleep_micros: u64,
}

impl Backend for HangingBackend {
    fn name(&self) -> &'static str {
        "hanger"
    }
    fn expectation(&self, job: &ExpectationJob<'_>) -> Result<Estimate, QnsError> {
        std::thread::sleep(std::time::Duration::from_micros(self.sleep_micros));
        ApproxBackend::level(1).expectation(job)
    }
    fn cost_hint(&self, _job: &ExpectationJob<'_>) -> Option<u128> {
        Some(1)
    }
}

fn chaos_engines(plan: &Arc<FaultPlan>) -> Vec<SharedBackend> {
    vec![
        Arc::new(ChaosBackend::new(ApproxBackend::level(1), Arc::clone(plan))),
        Arc::new(ChaosBackend::new(
            qns_api::DensityBackend::new(),
            Arc::clone(plan),
        )),
        Arc::new(ChaosBackend::new(
            qns_api::TnetBackend::new(),
            Arc::clone(plan),
        )),
    ]
}

#[test]
fn without_a_plan_chaos_wrapping_changes_nothing() {
    // The full fault-tolerance stack enabled, but an empty plan: every
    // result must be byte-identical to the plain pre-fault service.
    let empty = Arc::new(FaultPlan::new(0));
    let chaosed = ServiceBuilder::new()
        .workers(2)
        .engines(chaos_engines(&empty))
        .retry_policy(RetryPolicy::default())
        .timeout_policy(TimeoutPolicy::default())
        .admission_policy(AdmissionPolicy {
            degrade_pressure: u128::MAX,
            shed_pressure: u128::MAX,
        })
        .build();
    // Same engine subset, unwrapped, so Auto routes identically.
    let plain = ServiceBuilder::new()
        .workers(2)
        .engines(vec![
            Arc::new(ApproxBackend::level(1)),
            Arc::new(qns_api::DensityBackend::new()),
            Arc::new(qns_api::TnetBackend::new()),
        ])
        .build();
    for bits in 0..6 {
        let spec = spec_with_observable(bits);
        let a = chaosed.submit(&spec).unwrap().wait().unwrap();
        let b = plain.submit(&spec).unwrap().wait().unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.backend, b.backend);
    }
    assert_eq!(empty.total_fired(), 0);
    let stats = chaosed.stats();
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.breaker_opens, 0);
}

#[test]
fn seeded_chaos_resolves_every_handle_exactly_once() {
    for seed in [1u64, 7, 42, 1234] {
        let plan = Arc::new(
            FaultPlan::new(seed)
                .with_error("backend.error", 350)
                .with_error("backend.panic", 150)
                .with_delay("backend.delay", 200, 300),
        );
        let service = ServiceBuilder::new()
            .workers(2)
            .cache_capacity(0) // every submission exercises execution
            .engines(chaos_engines(&plan))
            .retry_policy(RetryPolicy {
                max_attempts: 4,
                base_backoff_micros: 100,
                max_backoff_micros: 400,
                seed,
            })
            .breaker_policy(BreakerPolicy {
                window: 8,
                max_failures: 4,
                cooldown_micros: 2_000,
            })
            .build();
        let handles: Vec<_> = (0..24)
            .map(|bits| service.submit(&spec_with_observable(bits)).unwrap())
            .collect();
        for h in &handles {
            // Every handle resolves — success or a terminal error, but
            // never a hang, whatever the schedule injected.
            let _ = h.wait();
            // …and exactly once: the resolved value is stable.
            assert!(h.try_get().is_some());
        }
        assert!(plan.total_fired() > 0, "seed {seed} injected nothing");
        let stats = service.stats();
        assert_eq!(stats.inflight, 0, "seed {seed}: leaked flight entries");
        assert_eq!(stats.submitted, 24);
        // Stats reconcile with the metrics registry they view.
        let snap = service.metrics_snapshot();
        assert_eq!(
            stats.retries,
            snap.counter_value("qns_serve_retries_total").unwrap_or(0)
        );
        assert_eq!(
            stats.failovers,
            snap.counter_value("qns_serve_failovers_total").unwrap_or(0)
        );
        // No worker died permanently: a clean job still executes even
        // though panics were injected (catch_unwind containment).
        let clean = ServiceBuilder::new().workers(1).build();
        drop(clean);
        let again = service.submit(&spec_with_observable(1000)).unwrap();
        let _ = again.wait();
        assert!(again.try_get().is_some(), "seed {seed}: pool died");
        service.shutdown();
    }
}

#[test]
fn same_seed_replays_bit_identically() {
    let run = |seed: u64| -> Vec<Result<u64, String>> {
        let plan = Arc::new(FaultPlan::new(seed).with_error("backend.error", 400));
        // One worker: queue order, failpoint hit order and backoff
        // jitter are then all pure functions of the seed.
        let service = ServiceBuilder::new()
            .workers(1)
            .cache_capacity(0)
            .engines(chaos_engines(&plan))
            .retry_policy(RetryPolicy {
                max_attempts: 3,
                base_backoff_micros: 50,
                max_backoff_micros: 200,
                seed,
            })
            .build();
        (0..12)
            .map(|bits| {
                service
                    .submit(&spec_with_observable(bits))
                    .unwrap()
                    .wait()
                    .map(|e| e.value.to_bits())
                    .map_err(|e| e.to_string())
            })
            .collect()
    };
    assert_eq!(run(42), run(42), "same seed must replay identically");
}

#[test]
fn retryable_failures_fail_over_to_the_next_cheapest_engine() {
    // `flaky` is the cheapest engine and always fails; Auto + retry
    // must fail over to the real engine and answer bit-identically to
    // running it directly.
    let service = ServiceBuilder::new()
        .workers(1)
        .engines(vec![
            Arc::new(FlakyBackend::new(usize::MAX, 1)),
            Arc::new(ApproxBackend::level(1)),
        ])
        .retry_policy(RetryPolicy {
            max_attempts: 2,
            base_backoff_micros: 0, // retry immediately
            max_backoff_micros: 0,
            seed: 0,
        })
        .build();
    let spec = spec_with_observable(3);
    let est = service.submit(&spec).unwrap().wait().unwrap();
    let direct = ApproxBackend::level(1).expectation(&spec.job()).unwrap();
    assert_eq!(est.value.to_bits(), direct.value.to_bits());
    assert_eq!(est.backend, direct.backend);
    let stats = service.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.failovers, 1);
    assert_eq!(stats.executed, 2, "both attempts executed a backend");
}

#[test]
fn breakers_open_under_sustained_failure_and_reclose_after_cooldown() {
    let service = ServiceBuilder::new()
        .workers(1)
        .engines(vec![
            Arc::new(FlakyBackend::new(3, 1)),
            Arc::new(ApproxBackend::level(1)),
        ])
        .breaker_policy(BreakerPolicy {
            window: 4,
            max_failures: 3,
            cooldown_micros: 20_000,
        })
        .build();
    // Three pinned failures trip the flaky engine's breaker…
    for bits in 0..3 {
        let handle = service
            .submit_routed(&spec_with_observable(bits), Route::Fixed("flaky"))
            .unwrap();
        assert!(handle.wait().is_err());
    }
    let state_of = |service: &qns_serve::Service, name: &str| {
        service
            .breaker_states()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
            .unwrap()
    };
    assert_eq!(state_of(&service, "flaky"), BreakerState::Open);
    assert_eq!(service.stats().breaker_opens, 1);
    // …Auto routing now avoids it even though it is cheapest…
    let routed = service
        .submit(&spec_with_observable(50))
        .unwrap()
        .wait()
        .unwrap();
    assert_ne!(
        routed.backend, "flaky",
        "open breaker must be routed around"
    );
    // …and after the cooldown one successful trial re-closes it (the
    // flaky backend has exhausted its scripted failures by now).
    std::thread::sleep(std::time::Duration::from_millis(30));
    let trial = service
        .submit_routed(&spec_with_observable(51), Route::Fixed("flaky"))
        .unwrap()
        .wait();
    assert!(trial.is_ok(), "half-open trial should succeed: {trial:?}");
    assert_eq!(state_of(&service, "flaky"), BreakerState::Closed);
}

#[test]
fn the_watchdog_resolves_hung_backends_with_timeout() {
    let service = ServiceBuilder::new()
        .workers(1)
        .engines(vec![Arc::new(HangingBackend {
            sleep_micros: 300_000,
        })])
        .timeout_policy(TimeoutPolicy {
            base_micros: 15_000,
            micros_per_kilocost: 0,
            check_interval_micros: 1_000,
        })
        .build();
    let handle = service.submit(&spec_with_observable(0)).unwrap();
    match handle.wait() {
        Err(QnsError::Timeout { after_micros }) => assert_eq!(after_micros, 15_000),
        other => panic!("expected a timeout, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(
        stats.inflight, 0,
        "the watchdog retires the timed-out flight entry"
    );
    // The handle resolved exactly once; the worker's late result is
    // dropped, and shutdown drains cleanly (no stranded state).
    assert!(handle.try_get().unwrap().is_err());
    service.shutdown();
}

#[test]
fn a_timed_out_refinement_cancels_cooperatively() {
    let _guard = GLOBAL_PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    // Every refinement level stalls 60 ms; a 20 ms deadline must fire
    // before level 0 lands, resolving the stream with Timeout.
    faults::install(Arc::new(FaultPlan::new(5).with_delay(
        "refine.advance",
        1000,
        60_000,
    )));
    let service = ServiceBuilder::new()
        .workers(1)
        .timeout_policy(TimeoutPolicy {
            base_micros: 20_000,
            micros_per_kilocost: 0,
            check_interval_micros: 1_000,
        })
        .build();
    let handle = service
        .submit_refine(&refine_spec(), &RefineRequest::new())
        .unwrap();
    match handle.wait_final() {
        Err(QnsError::Timeout { .. }) => {}
        other => panic!("expected a refinement timeout, got {other:?}"),
    }
    service.shutdown();
    faults::uninstall();
}

#[test]
fn fault_stalled_levels_never_poison_the_refine_rate_ewma() {
    let _guard = GLOBAL_PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    // Regression: before the guard, a single fault-stalled level fed
    // its (absurdly slow) wall time into the EWMA and every later
    // deadline converted to a near-zero pattern budget.
    faults::install(Arc::new(FaultPlan::new(1).with_delay(
        "refine.advance",
        1000,
        3_000,
    )));
    let service = ServiceBuilder::new().workers(1).build();
    service
        .submit_refine(&refine_spec(), &RefineRequest::new())
        .unwrap()
        .wait_final()
        .unwrap();
    assert_eq!(
        service.stats().refine_rate_pps,
        0.0,
        "stalled levels must not feed the EWMA"
    );
    faults::uninstall();
    // Clean levels calibrate it as before.
    let clean = JobSpec::zeros(NoisyCircuit::inject_random(
        ghz(4),
        &channels::depolarizing(1e-3),
        3,
        29,
    ));
    service
        .submit_refine(&clean, &RefineRequest::new())
        .unwrap()
        .wait_final()
        .unwrap();
    assert!(service.stats().refine_rate_pps > 0.0);
}

#[test]
fn shutdown_during_backoff_resolves_the_handle() {
    let service = ServiceBuilder::new()
        .workers(1)
        .engines(vec![Arc::new(FlakyBackend::new(usize::MAX, 1))])
        .retry_policy(RetryPolicy {
            max_attempts: 100,
            base_backoff_micros: 500_000, // half a second per backoff
            max_backoff_micros: 500_000,
            seed: 0,
        })
        .build();
    let handle = service.submit(&spec_with_observable(0)).unwrap();
    // Give the worker time to fail the first attempt and enter the
    // backoff sleep, then shut down: the sliced sleep must abort and
    // resolve the handle with the last error — well before the ~50 s
    // the full retry schedule would take.
    std::thread::sleep(std::time::Duration::from_millis(30));
    service.shutdown();
    match handle.try_get() {
        Some(Err(QnsError::ExecutionPanicked { .. })) => {}
        other => panic!("expected the last attempt's error, got {other:?}"),
    }
}

#[test]
fn dropping_the_last_handle_during_retries_leaks_nothing() {
    let service = ServiceBuilder::new()
        .workers(1)
        .engines(vec![Arc::new(FlakyBackend::new(usize::MAX, 1))])
        .retry_policy(RetryPolicy {
            max_attempts: 3,
            base_backoff_micros: 1_000,
            max_backoff_micros: 2_000,
            seed: 0,
        })
        .build();
    drop(service.submit(&spec_with_observable(0)).unwrap());
    // The flight keeps running (and failing) with no waiter; once it
    // exhausts its attempts the table must be empty and the stats must
    // reconcile with the registry.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = service.stats();
        if stats.inflight == 0 {
            assert_eq!(stats.retries, 2, "3 attempts = 2 retries");
            let snap = service.metrics_snapshot();
            assert_eq!(
                snap.counter_value("qns_serve_retries_total").unwrap_or(0),
                2
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "flight entry leaked after handle drop"
        );
        std::thread::yield_now();
    }
    service.shutdown();
}

#[test]
fn admission_control_sheds_with_overloaded() {
    let service = ServiceBuilder::new()
        .workers(1)
        .admission_policy(AdmissionPolicy {
            degrade_pressure: 1,
            shed_pressure: 1, // everything that would queue is shed
        })
        .build();
    let spec = spec_with_observable(0);
    match service.submit(&spec) {
        Err(QnsError::Overloaded { queue_depth }) => assert_eq!(queue_depth, 0),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.submitted, 0, "shed submissions are not accepted");
    assert_eq!(stats.inflight, 0);
}

#[test]
fn degraded_refinements_stay_theorem1_bounded_and_bitwise_correct() {
    let spec = refine_spec();
    let n = spec.noisy().noise_count();
    let service = ServiceBuilder::new()
        .workers(1)
        .admission_policy(AdmissionPolicy {
            degrade_pressure: 1,      // always degraded…
            shed_pressure: u128::MAX, // …never shed
        })
        .build();
    // An unlimited request would normally answer at the final level;
    // under pressure it is admitted at a shallower first level.
    let handle = service.submit_refine(&spec, &RefineRequest::new()).unwrap();
    assert!(
        handle.first_level() < n,
        "degrade_pressure=1 must lower the first level"
    );
    let first = handle.wait_first().unwrap();
    let level = first.partial.level;
    // The degraded answer is worse only in tightness: its value and
    // Theorem-1 error bound are bit-identical to a fresh, unloaded run
    // at the served level.
    let direct = ApproxBackend::level(level)
        .expectation(&spec.job())
        .unwrap();
    assert_eq!(first.estimate.value.to_bits(), direct.value.to_bits());
    assert_eq!(first.estimate.error_bound, direct.error_bound);
    assert!(first.estimate.error_bound.is_some());
    // Escalation past the degraded level still runs to completion.
    let last = handle.wait_final().unwrap();
    assert_eq!(last.partial.level, n);
    assert_eq!(service.stats().degraded, 1);
}
