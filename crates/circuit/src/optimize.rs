//! Peephole circuit optimization.
//!
//! Simulation cost scales with gate count, so trimming redundancy
//! before a run is free accuracy budget. The passes here are
//! deliberately conservative: every rewrite preserves the circuit's
//! unitary **exactly** (including global phase), verified by the
//! test-suite invariant `optimized.unitary() == original.unitary()`.
//!
//! Passes:
//!
//! * [`cancel_inverse_pairs`] — removes `G · G†` pairs that are
//!   adjacent on their qubits (no intervening gate touches them).
//! * [`merge_rotations`] — fuses qubit-adjacent same-axis rotations
//!   (`Rz(a)·Rz(b) → Rz(a+b)`, likewise `Rx`, `Ry`, `Phase`,
//!   `CPhase`, `ZZ`, `Givens`).
//! * [`drop_identities`] — removes gates whose matrix is the identity
//!   (e.g. fused rotations with zero total angle).
//! * [`optimize`] — runs all passes to a fixed point.

use crate::{Circuit, Gate, Operation};
use qns_linalg::Matrix;

/// Returns `true` when `ops[i]` and `ops[j]` act on the same qubit set
/// and no operation strictly between them touches any of those qubits.
fn adjacent_on_qubits(ops: &[Operation], i: usize, j: usize) -> bool {
    let qs = &ops[i].qubits;
    let mut sorted_a: Vec<usize> = qs.clone();
    sorted_a.sort_unstable();
    let mut sorted_b: Vec<usize> = ops[j].qubits.clone();
    sorted_b.sort_unstable();
    if sorted_a != sorted_b {
        return false;
    }
    ops[i + 1..j]
        .iter()
        .all(|mid| mid.qubits.iter().all(|q| !qs.contains(q)))
}

/// `true` when the two operations compose to the identity **exactly**
/// (up to numerical tolerance, including global phase).
fn compose_to_identity(a: &Operation, b: &Operation) -> bool {
    if a.qubits.len() != b.qubits.len() {
        return false;
    }
    let ma = a.gate.matrix();
    let mb = b.gate.matrix();
    // Orientation: for two-qubit gates the qubit order may differ.
    let prod = if a.qubits == b.qubits {
        mb.matmul(&ma)
    } else if a.qubits.len() == 2 && a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0] {
        mb.matmul(&swap_conjugate(&ma))
    } else {
        return false;
    };
    prod.approx_eq(&Matrix::identity(prod.rows()), 1e-12)
}

/// `SWAP · M · SWAP` — the matrix of a two-qubit gate with its qubits
/// exchanged.
fn swap_conjugate(m: &Matrix) -> Matrix {
    use qns_linalg::cr;
    let swap = Matrix::from_rows(&[
        vec![cr(1.0), cr(0.0), cr(0.0), cr(0.0)],
        vec![cr(0.0), cr(0.0), cr(1.0), cr(0.0)],
        vec![cr(0.0), cr(1.0), cr(0.0), cr(0.0)],
        vec![cr(0.0), cr(0.0), cr(0.0), cr(1.0)],
    ]);
    swap.matmul(m).matmul(&swap)
}

/// Removes adjacent `G · G†` pairs. Returns the number of removed
/// operations (always even).
pub fn cancel_inverse_pairs(circuit: &mut Circuit) -> usize {
    let mut removed = 0;
    loop {
        let ops = circuit.operations();
        let mut victim: Option<(usize, usize)> = None;
        'search: for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                if !adjacent_on_qubits(ops, i, j) {
                    // Keep scanning j only while the qubits stay
                    // untouched; once blocked, later j can't be
                    // adjacent either.
                    if ops[i + 1..=j]
                        .iter()
                        .any(|mid| mid.qubits.iter().any(|q| ops[i].qubits.contains(q)))
                    {
                        continue 'search;
                    }
                    continue;
                }
                if compose_to_identity(&ops[i], &ops[j]) {
                    victim = Some((i, j));
                    break 'search;
                }
                // Same qubits but not inverse: blocks further pairing.
                continue 'search;
            }
        }
        match victim {
            Some((i, j)) => {
                let mut rebuilt = Circuit::new(circuit.n_qubits());
                for (k, op) in circuit.operations().iter().enumerate() {
                    if k != i && k != j {
                        rebuilt.push(op.clone());
                    }
                }
                *circuit = rebuilt;
                removed += 2;
            }
            None => return removed,
        }
    }
}

/// Attempts to fuse two same-kind rotations into one.
fn fused(a: &Gate, b: &Gate) -> Option<Gate> {
    use Gate::*;
    match (a, b) {
        (Rx(x), Rx(y)) => Some(Rx(x + y)),
        (Ry(x), Ry(y)) => Some(Ry(x + y)),
        (Rz(x), Rz(y)) => Some(Rz(x + y)),
        (Phase(x), Phase(y)) => Some(Phase(x + y)),
        (CPhase(x), CPhase(y)) => Some(CPhase(x + y)),
        (ZZ(x), ZZ(y)) => Some(ZZ(x + y)),
        (Givens(x), Givens(y)) => Some(Givens(x + y)),
        _ => None,
    }
}

/// Fuses qubit-adjacent same-axis rotations. Returns the number of
/// operations eliminated.
pub fn merge_rotations(circuit: &mut Circuit) -> usize {
    let mut removed = 0;
    loop {
        let ops = circuit.operations();
        let mut action: Option<(usize, usize, Gate)> = None;
        'search: for i in 0..ops.len() {
            for j in (i + 1)..ops.len() {
                if !adjacent_on_qubits(ops, i, j) {
                    if ops[i + 1..=j]
                        .iter()
                        .any(|mid| mid.qubits.iter().any(|q| ops[i].qubits.contains(q)))
                    {
                        continue 'search;
                    }
                    continue;
                }
                // Orientation-sensitive kinds (CPhase/ZZ are symmetric;
                // Givens is not symmetric under qubit swap).
                let symmetric = matches!(ops[i].gate, Gate::CPhase(_) | Gate::ZZ(_));
                if ops[i].qubits != ops[j].qubits && !symmetric {
                    continue 'search;
                }
                if let Some(g) = fused(&ops[i].gate, &ops[j].gate) {
                    action = Some((i, j, g));
                }
                break 'search;
            }
        }
        match action {
            Some((i, j, g)) => {
                let mut rebuilt = Circuit::new(circuit.n_qubits());
                for (k, op) in circuit.operations().iter().enumerate() {
                    if k == i {
                        rebuilt.push(Operation::new(g.clone(), op.qubits.clone()));
                    } else if k != j {
                        rebuilt.push(op.clone());
                    }
                }
                *circuit = rebuilt;
                removed += 1;
            }
            None => return removed,
        }
    }
}

/// Removes gates whose matrix equals the identity (within 1e-12).
/// Returns the number of removed operations.
pub fn drop_identities(circuit: &mut Circuit) -> usize {
    let before = circuit.gate_count();
    let mut rebuilt = Circuit::new(circuit.n_qubits());
    for op in circuit.operations() {
        let m = op.gate.matrix();
        if !m.approx_eq(&Matrix::identity(m.rows()), 1e-12) {
            rebuilt.push(op.clone());
        }
    }
    *circuit = rebuilt;
    before - circuit.gate_count()
}

/// Runs all passes to a fixed point; returns total operations removed.
pub fn optimize(circuit: &mut Circuit) -> usize {
    let mut total = 0;
    loop {
        let round =
            cancel_inverse_pairs(circuit) + merge_rotations(circuit) + drop_identities(circuit);
        if round == 0 {
            return total;
        }
        total += round;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{inst_grid, qaoa_ring, QaoaRound};

    fn assert_equivalent(a: &Circuit, b: &Circuit) {
        assert!(
            a.unitary().approx_eq(&b.unitary(), 1e-10),
            "optimization changed the unitary"
        );
    }

    #[test]
    fn cancels_adjacent_self_inverse_gates() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cx(0, 1);
        let original = c.clone();
        let removed = cancel_inverse_pairs(&mut c);
        assert_eq!(removed, 2);
        assert_eq!(c.gate_count(), 1);
        assert_equivalent(&original, &c);
    }

    #[test]
    fn cancels_through_unrelated_gates() {
        let mut c = Circuit::new(3);
        c.x(0).h(2).x(0); // the H on qubit 2 does not block
        let removed = cancel_inverse_pairs(&mut c);
        assert_eq!(removed, 2);
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn blocked_pairs_survive() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1).x(0); // CX touches qubit 0: blocks
        let removed = cancel_inverse_pairs(&mut c);
        assert_eq!(removed, 0);
        assert_eq!(c.gate_count(), 3);
    }

    #[test]
    fn cancels_t_tdg() {
        let mut c = Circuit::new(1);
        c.t(0).apply(Gate::Tdg, &[0]);
        assert_eq!(cancel_inverse_pairs(&mut c), 2);
        assert_eq!(c.gate_count(), 0);
    }

    #[test]
    fn cancels_cz_pair_with_swapped_qubits() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(1, 0); // CZ is symmetric
        assert_eq!(cancel_inverse_pairs(&mut c), 2);
        assert_eq!(c.gate_count(), 0);
    }

    #[test]
    fn does_not_cancel_cx_with_swapped_qubits() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0); // NOT inverse of each other
        assert_eq!(cancel_inverse_pairs(&mut c), 0);
    }

    #[test]
    fn merges_rotations_and_drops_zero() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.4).rz(0, -0.4).h(0);
        let original = c.clone();
        let removed = optimize(&mut c);
        assert!(removed >= 2, "removed {removed}");
        assert_eq!(c.gate_count(), 1); // only the H survives
        assert_equivalent(&original, &c);
    }

    #[test]
    fn merges_zz_interactions() {
        let mut c = Circuit::new(2);
        c.zz(0, 1, 0.3).zz(1, 0, 0.5); // symmetric gate, swapped order
        let original = c.clone();
        let removed = merge_rotations(&mut c);
        assert_eq!(removed, 1);
        assert_eq!(c.gate_count(), 1);
        assert_equivalent(&original, &c);
    }

    #[test]
    fn rotation_merge_respects_blocking() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.2).h(0).rx(0, 0.3); // H blocks the merge
        assert_eq!(merge_rotations(&mut c), 0);
        assert_eq!(c.gate_count(), 3);
    }

    #[test]
    fn optimize_preserves_generator_circuits() {
        // Benchmark circuits are near-irreducible; the invariant is
        // that whatever is removed preserves the unitary exactly.
        let rounds = [QaoaRound {
            gamma: 0.35,
            beta: 0.2,
        }];
        for c0 in [qaoa_ring(4, &rounds), inst_grid(2, 2, 6, 3)] {
            let mut c = c0.clone();
            optimize(&mut c);
            assert_equivalent(&c0, &c);
        }
    }

    #[test]
    fn optimize_cleans_concatenated_inverse_circuit() {
        // C · C† optimizes all the way (or nearly) to nothing.
        let rounds = [QaoaRound {
            gamma: 0.4,
            beta: 0.3,
        }];
        let base = qaoa_ring(3, &rounds);
        let mut c = base.clone();
        c.extend(&base.dagger());
        let original = c.clone();
        let removed = optimize(&mut c);
        assert!(removed > base.gate_count(), "removed only {removed}");
        assert_equivalent(&original, &c);
    }

    #[test]
    fn global_phase_is_preserved() {
        // Rz(2π) = −I: must NOT be dropped (it changes the phase).
        let mut c = Circuit::new(1);
        c.rz(0, 2.0 * std::f64::consts::PI);
        let original = c.clone();
        drop_identities(&mut c);
        assert_eq!(c.gate_count(), 1, "−I global phase must survive");
        assert_equivalent(&original, &c);
    }
}
