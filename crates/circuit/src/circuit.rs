//! The circuit intermediate representation.

use crate::Gate;
use qns_linalg::{Complex64, Matrix};
use std::fmt;

/// One gate applied to specific qubits.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// The gate.
    pub gate: Gate,
    /// Target qubits (length equals `gate.arity()`; for controlled
    /// gates the first entry is the control).
    pub qubits: Vec<usize>,
}

impl Operation {
    /// Creates an operation, validating arity.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len() != gate.arity()` or the qubits repeat.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {} expects {} qubits, got {}",
            gate.name(),
            gate.arity(),
            qubits.len()
        );
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate on identical qubits");
        }
        Operation { gate, qubits }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.gate.name(), self.qubits)
    }
}

/// An ordered sequence of gate applications on `n_qubits` qubits.
///
/// The builder methods return `&mut Self` so constructions chain:
///
/// ```
/// use qns_circuit::Circuit;
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2);
/// assert_eq!(c.depth(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "circuit needs at least one qubit");
        Circuit {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The operations in program order.
    #[inline]
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Total gate count.
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if any target qubit is out of range.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        for &q in &op.qubits {
            assert!(
                q < self.n_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.n_qubits
            );
        }
        self.ops.push(op);
        self
    }

    /// Appends `gate` on `qubits`.
    pub fn apply(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.push(Operation::new(gate, qubits.to_vec()))
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::H, &[q])
    }

    /// Pauli X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::X, &[q])
    }

    /// Pauli Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Y, &[q])
    }

    /// Pauli Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Z, &[q])
    }

    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::T, &[q])
    }

    /// X-rotation by `theta` on `q`.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.apply(Gate::Rx(theta), &[q])
    }

    /// Y-rotation by `theta` on `q`.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.apply(Gate::Ry(theta), &[q])
    }

    /// Z-rotation by `theta` on `q`.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.apply(Gate::Rz(theta), &[q])
    }

    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.apply(Gate::CX, &[c, t])
    }

    /// CZ between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::CZ, &[a, b])
    }

    /// ZZ-interaction `exp(-iθ Z⊗Z/2)` between `a` and `b`.
    pub fn zz(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.apply(Gate::ZZ(theta), &[a, b])
    }

    /// Givens rotation between `a` and `b`.
    pub fn givens(&mut self, a: usize, b: usize, theta: f64) -> &mut Self {
        self.apply(Gate::Givens(theta), &[a, b])
    }

    /// Appends all operations of `other` (must address ≤ our qubits).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        for op in &other.ops {
            self.push(op.clone());
        }
        self
    }

    /// The adjoint circuit: gates reversed and conjugate-transposed.
    pub fn dagger(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for op in self.ops.iter().rev() {
            c.push(Operation::new(op.gate.dagger(), op.qubits.clone()));
        }
        c
    }

    /// Circuit depth under ASAP (as-soon-as-possible) layering: the
    /// number of layers when every gate starts as early as its qubits
    /// allow.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let start = op.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
            let end = start + 1;
            for &q in &op.qubits {
                level[q] = end;
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops.iter().filter(|op| op.gate.arity() == 2).count()
    }

    /// Builds the full `2^n × 2^n` unitary of the circuit.
    ///
    /// Intended for small `n` (verification); memory is `O(4^n)`.
    ///
    /// Qubit 0 is the most significant bit of the basis index, matching
    /// the convention of [`Gate::matrix`] for two-qubit gates.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 12` (guard against accidental explosion).
    pub fn unitary(&self) -> Matrix {
        assert!(
            self.n_qubits <= 12,
            "unitary() is for small circuits (≤12 qubits)"
        );
        let dim = 1usize << self.n_qubits;
        let mut u = Matrix::identity(dim);
        for op in &self.ops {
            let g = self.expand_gate(op);
            u = g.matmul(&u);
        }
        u
    }

    /// Expands one operation to the full `2^n` dimensional matrix.
    pub(crate) fn expand_gate(&self, op: &Operation) -> Matrix {
        let n = self.n_qubits;
        let dim = 1usize << n;
        let gm = op.gate.matrix();
        let mut full = Matrix::zeros(dim, dim);
        match op.qubits.len() {
            1 => {
                let q = op.qubits[0];
                let shift = n - 1 - q; // qubit 0 = most significant bit
                for col in 0..dim {
                    let b = (col >> shift) & 1;
                    for row_bit in 0..2 {
                        let amp = gm[(row_bit, b)];
                        if amp == Complex64::ZERO {
                            continue;
                        }
                        let row = (col & !(1 << shift)) | (row_bit << shift);
                        full[(row, col)] += amp;
                    }
                }
            }
            2 => {
                let (q0, q1) = (op.qubits[0], op.qubits[1]);
                let s0 = n - 1 - q0;
                let s1 = n - 1 - q1;
                for col in 0..dim {
                    let b0 = (col >> s0) & 1;
                    let b1 = (col >> s1) & 1;
                    let in_idx = b0 * 2 + b1;
                    for out_idx in 0..4 {
                        let amp = gm[(out_idx, in_idx)];
                        if amp == Complex64::ZERO {
                            continue;
                        }
                        let o0 = out_idx >> 1;
                        let o1 = out_idx & 1;
                        let row = (col & !(1 << s0) & !(1 << s1)) | (o0 << s0) | (o1 << s1);
                        full[(row, col)] += amp;
                    }
                }
            }
            _ => unreachable!("gates are 1- or 2-qubit"),
        }
        full
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Circuit({} qubits, {} gates, depth {})",
            self.n_qubits,
            self.gate_count(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_linalg::cr;

    #[test]
    fn depth_of_parallel_gates() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // all in one layer
        assert_eq!(c.depth(), 1);
        c.cx(0, 1).cx(2, 3); // second layer
        assert_eq!(c.depth(), 2);
        c.cx(1, 2); // third layer (waits for both)
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn bell_circuit_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let u = c.unitary();
        // First column is the Bell state (|00⟩+|11⟩)/√2.
        let inv = std::f64::consts::FRAC_1_SQRT_2;
        assert!(u[(0, 0)].approx_eq(cr(inv), 1e-12));
        assert!(u[(3, 0)].approx_eq(cr(inv), 1e-12));
        assert!(u[(1, 0)].approx_eq(cr(0.0), 1e-12));
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn single_qubit_expansion_respects_bit_order() {
        // X on qubit 0 of 2 qubits flips the most significant bit.
        let mut c = Circuit::new(2);
        c.x(0);
        let u = c.unitary();
        // |00⟩ → |10⟩ (index 0 → 2)
        assert!(u[(2, 0)].approx_eq(cr(1.0), 1e-14));
    }

    #[test]
    fn cx_control_order_matters() {
        let mut c01 = Circuit::new(2);
        c01.cx(0, 1);
        let mut c10 = Circuit::new(2);
        c10.cx(1, 0);
        assert!(!c01.unitary().approx_eq(&c10.unitary(), 1e-12));
        // CX(0,1): |10⟩ → |11⟩ (index 2 → 3)
        assert!(c01.unitary()[(3, 2)].approx_eq(cr(1.0), 1e-14));
        // CX(1,0): |01⟩ → |11⟩ (index 1 → 3)
        assert!(c10.unitary()[(3, 1)].approx_eq(cr(1.0), 1e-14));
    }

    #[test]
    fn dagger_gives_inverse_unitary() {
        let mut c = Circuit::new(3);
        c.h(0).t(1).cx(0, 2).rz(2, 0.7).cz(1, 2).ry(0, -0.3);
        let u = c.unitary();
        let ud = c.dagger().unitary();
        let dim = 1 << 3;
        assert!(u.matmul(&ud).approx_eq(&Matrix::identity(dim), 1e-12));
    }

    #[test]
    fn unitary_matches_gate_order() {
        // X then Z on one qubit: total = Z·X.
        let mut c = Circuit::new(1);
        c.x(0).z(0);
        let expect = Gate::Z.matrix().matmul(&Gate::X.matrix());
        assert!(c.unitary().approx_eq(&expect, 1e-14));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend(&b);
        assert_eq!(a.gate_count(), 2);
        assert_eq!(a.operations()[1].gate, Gate::CX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.h(5);
    }

    #[test]
    #[should_panic(expected = "identical qubits")]
    fn duplicate_qubits_panic() {
        let _ = Operation::new(Gate::CZ, vec![1, 1]);
    }

    #[test]
    fn two_qubit_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).t(2);
        assert_eq!(c.two_qubit_gate_count(), 2);
    }

    #[test]
    fn zz_commutes_with_cz_layers() {
        // Diagonal gates commute; check via unitaries on 2 qubits.
        let mut ab = Circuit::new(2);
        ab.zz(0, 1, 0.4).cz(0, 1);
        let mut ba = Circuit::new(2);
        ba.cz(0, 1).zz(0, 1, 0.4);
        assert!(ab.unitary().approx_eq(&ba.unitary(), 1e-12));
    }
}
