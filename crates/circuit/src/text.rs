//! A plain-text circuit format (QASM-flavoured, one operation per
//! line) for dumping and loading benchmark circuits.
//!
//! ```text
//! qubits 3
//! h 0
//! cx 0 1
//! rz 2 0.785398163
//! zz 1 2 0.4
//! ```
//!
//! Gate mnemonics are lowercase ASCII (`sdg`/`tdg` for the adjoint
//! phase gates, `sx`/`sy`/`sw` for the square-root gates). Gates with
//! embedded custom matrices (`Custom1`, `Custom2`, `CU`) have no text
//! form and fail to serialize.

use crate::{Circuit, Gate};
use std::fmt;

/// Error produced when parsing or serializing the text format.
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitTextError {
    /// 1-based line number (0 for serialization errors).
    pub line: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for CircuitTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "circuit text error: {}", self.message)
        } else {
            write!(
                f,
                "circuit text error at line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for CircuitTextError {}

fn err(line: usize, message: impl Into<String>) -> CircuitTextError {
    CircuitTextError {
        line,
        message: message.into(),
    }
}

/// Serializes a circuit to the text format.
///
/// # Errors
///
/// Fails when the circuit contains a gate without a text form
/// (`Custom1`, `Custom2`, `CU`).
pub fn to_text(circuit: &Circuit) -> Result<String, CircuitTextError> {
    let mut out = format!("qubits {}\n", circuit.n_qubits());
    for op in circuit.operations() {
        let qubits: Vec<String> = op.qubits.iter().map(|q| q.to_string()).collect();
        let q = qubits.join(" ");
        let line = match &op.gate {
            Gate::H => format!("h {q}"),
            Gate::X => format!("x {q}"),
            Gate::Y => format!("y {q}"),
            Gate::Z => format!("z {q}"),
            Gate::S => format!("s {q}"),
            Gate::Sdg => format!("sdg {q}"),
            Gate::T => format!("t {q}"),
            Gate::Tdg => format!("tdg {q}"),
            Gate::SqrtX => format!("sx {q}"),
            Gate::SqrtY => format!("sy {q}"),
            Gate::SqrtW => format!("sw {q}"),
            Gate::Rx(a) => format!("rx {q} {a:.17e}"),
            Gate::Ry(a) => format!("ry {q} {a:.17e}"),
            Gate::Rz(a) => format!("rz {q} {a:.17e}"),
            Gate::Phase(a) => format!("phase {q} {a:.17e}"),
            Gate::CZ => format!("cz {q}"),
            Gate::CX => format!("cx {q}"),
            Gate::CPhase(a) => format!("cphase {q} {a:.17e}"),
            Gate::ISwap => format!("iswap {q}"),
            Gate::FSim(a, b) => format!("fsim {q} {a:.17e} {b:.17e}"),
            Gate::Givens(a) => format!("givens {q} {a:.17e}"),
            Gate::ZZ(a) => format!("zz {q} {a:.17e}"),
            Gate::Custom1(_) | Gate::Custom2(_) | Gate::CU(_) => {
                return Err(err(
                    0,
                    format!("gate {} has no text representation", op.gate.name()),
                ))
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// Parses the text format into a circuit.
///
/// Blank lines and `#` comments are ignored. The first non-comment
/// line must be `qubits N`.
///
/// # Errors
///
/// Fails with line-level diagnostics on any malformed input.
pub fn from_text(text: &str) -> Result<Circuit, CircuitTextError> {
    let mut circuit: Option<Circuit> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if circuit.is_none() {
            if tokens.len() != 2 || tokens[0] != "qubits" {
                return Err(err(lineno, "expected header `qubits N`"));
            }
            let n: usize = tokens[1]
                .parse()
                .map_err(|_| err(lineno, "invalid qubit count"))?;
            if n == 0 {
                return Err(err(lineno, "qubit count must be positive"));
            }
            circuit = Some(Circuit::new(n));
            continue;
        }
        let c = circuit.as_mut().expect("header parsed");
        let name = tokens[0];
        let parse_q = |tok: &str| -> Result<usize, CircuitTextError> {
            tok.parse()
                .map_err(|_| err(lineno, format!("invalid qubit `{tok}`")))
        };
        let parse_a = |tok: &str| -> Result<f64, CircuitTextError> {
            tok.parse()
                .map_err(|_| err(lineno, format!("invalid angle `{tok}`")))
        };
        let expect_args = |want: usize| -> Result<(), CircuitTextError> {
            if tokens.len() - 1 == want {
                Ok(())
            } else {
                Err(err(
                    lineno,
                    format!(
                        "`{name}` expects {want} arguments, got {}",
                        tokens.len() - 1
                    ),
                ))
            }
        };

        let (gate, qubits): (Gate, Vec<usize>) = match name {
            "h" | "x" | "y" | "z" | "s" | "sdg" | "t" | "tdg" | "sx" | "sy" | "sw" => {
                expect_args(1)?;
                let g = match name {
                    "h" => Gate::H,
                    "x" => Gate::X,
                    "y" => Gate::Y,
                    "z" => Gate::Z,
                    "s" => Gate::S,
                    "sdg" => Gate::Sdg,
                    "t" => Gate::T,
                    "tdg" => Gate::Tdg,
                    "sx" => Gate::SqrtX,
                    "sy" => Gate::SqrtY,
                    _ => Gate::SqrtW,
                };
                (g, vec![parse_q(tokens[1])?])
            }
            "rx" | "ry" | "rz" | "phase" => {
                expect_args(2)?;
                let a = parse_a(tokens[2])?;
                let g = match name {
                    "rx" => Gate::Rx(a),
                    "ry" => Gate::Ry(a),
                    "rz" => Gate::Rz(a),
                    _ => Gate::Phase(a),
                };
                (g, vec![parse_q(tokens[1])?])
            }
            "cz" | "cx" | "iswap" => {
                expect_args(2)?;
                let g = match name {
                    "cz" => Gate::CZ,
                    "cx" => Gate::CX,
                    _ => Gate::ISwap,
                };
                (g, vec![parse_q(tokens[1])?, parse_q(tokens[2])?])
            }
            "cphase" | "givens" | "zz" => {
                expect_args(3)?;
                let a = parse_a(tokens[3])?;
                let g = match name {
                    "cphase" => Gate::CPhase(a),
                    "givens" => Gate::Givens(a),
                    _ => Gate::ZZ(a),
                };
                (g, vec![parse_q(tokens[1])?, parse_q(tokens[2])?])
            }
            "fsim" => {
                expect_args(4)?;
                (
                    Gate::FSim(parse_a(tokens[3])?, parse_a(tokens[4])?),
                    vec![parse_q(tokens[1])?, parse_q(tokens[2])?],
                )
            }
            other => return Err(err(lineno, format!("unknown gate `{other}`"))),
        };
        for &q in &qubits {
            if q >= c.n_qubits() {
                return Err(err(lineno, format!("qubit {q} out of range")));
            }
        }
        if qubits.len() == 2 && qubits[0] == qubits[1] {
            return Err(err(lineno, "two-qubit gate on identical qubits"));
        }
        c.apply(gate, &qubits);
    }
    circuit.ok_or_else(|| err(0, "empty input (missing `qubits N` header)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{ghz, inst_grid, qaoa_grid_random};

    #[test]
    fn round_trip_ghz() {
        let c = ghz(4);
        let text = to_text(&c).unwrap();
        let back = from_text(&text).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn round_trip_qaoa_with_angles() {
        let c = qaoa_grid_random(2, 3, 2, 5);
        let back = from_text(&to_text(&c).unwrap()).unwrap();
        assert_eq!(c.gate_count(), back.gate_count());
        // Angles survive with full precision: unitaries agree.
        assert!(c.unitary().approx_eq(&back.unitary(), 1e-12));
    }

    #[test]
    fn round_trip_supremacy() {
        let c = inst_grid(2, 3, 6, 9);
        let back = from_text(&to_text(&c).unwrap()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\nqubits 2\nh 0 # trailing\n\ncx 0 1\n";
        let c = from_text(text).unwrap();
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn missing_header_is_an_error() {
        let e = from_text("h 0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("qubits"));
    }

    #[test]
    fn unknown_gate_reports_line() {
        let e = from_text("qubits 2\nh 0\nfoo 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("foo"));
    }

    #[test]
    fn out_of_range_qubit_reports_line() {
        let e = from_text("qubits 2\ncx 0 5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn wrong_arity_reports_line() {
        let e = from_text("qubits 2\nrx 0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expects 2"));
    }

    #[test]
    fn duplicate_qubits_rejected() {
        let e = from_text("qubits 2\ncz 1 1\n").unwrap_err();
        assert!(e.message.contains("identical"));
    }

    #[test]
    fn custom_gate_fails_to_serialize() {
        let mut c = Circuit::new(1);
        c.apply(Gate::Custom1(Box::new(Gate::H.matrix())), &[0]);
        assert!(to_text(&c).is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(from_text("").is_err());
        assert!(from_text("# only comments\n").is_err());
    }

    #[test]
    fn error_display_includes_line() {
        let e = from_text("qubits 2\nbad 0\n").unwrap_err();
        let s = e.to_string();
        assert!(s.contains("line 2"), "{s}");
    }
}
