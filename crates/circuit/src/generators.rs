//! Benchmark circuit generators.
//!
//! These reproduce the three circuit families of the paper's
//! evaluation (Section V), structurally matching the ReCirq circuits
//! the authors used:
//!
//! * **QAOA** (`qaoa_*`): the hardware-style ansatz of the paper's
//!   Fig. 1 — a `RY(-π/2)·RZ(π/2)` preparation layer, ZZ cost
//!   interactions decomposed as `CZ · RZ(θ) · CZ`, and an `RX(π)`
//!   mixer layer, repeated for a number of rounds.
//! * **Hartree–Fock VQE** (`hf_vqe`): a basis-rotation (Givens
//!   rotation ladder) ansatz over an `X`-prepared occupied register,
//!   the circuit class ReCirq's `hfvqe` module lowers to.
//! * **Supremacy** (`inst_grid`): `inst_RxC_D`-style random circuits —
//!   a Hadamard wall, then `D` cycles alternating one of eight CZ grid
//!   patterns with random `{√X, √Y, √W}` single-qubit gates (never
//!   repeating on the same qubit), as in Google's quantum-supremacy
//!   experiments.

use crate::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::f64::consts::{FRAC_PI_2, PI};

/// QAOA parameters for one round: the cost angle `gamma` and the mixer
/// angle `beta`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QaoaRound {
    /// Cost (ZZ interaction) angle.
    pub gamma: f64,
    /// Mixer (RX) angle.
    pub beta: f64,
}

/// Emits a ZZ-interaction `exp(-iθ Z⊗Z/2)` as `CX · RZ(θ) on target · CX`.
///
/// The paper's Fig. 1 draws the interaction with CZ conjugation; the
/// CX form is the algebraically equivalent entangling decomposition
/// (CZ and RZ are both diagonal, so a literal `CZ·RZ·CZ` would cancel).
fn zz_interaction(c: &mut Circuit, a: usize, b: usize, theta: f64) {
    c.cx(a, b);
    c.rz(b, theta);
    c.cx(a, b);
}

/// Builds a hardware-style QAOA circuit on an arbitrary edge list.
///
/// Layout per the paper's Fig. 1: preparation `RY(-π/2)·RZ(π/2)` on
/// every qubit, then for each round all edge interactions (as
/// `CZ·RZ·CZ`) followed by an `RX` mixer layer on every qubit. The
/// final mixer uses `RX(π)` exactly as in Fig. 1.
///
/// # Panics
///
/// Panics if an edge references a qubit `≥ n` or `rounds` is empty.
pub fn qaoa_on_edges(n: usize, edges: &[(usize, usize)], rounds: &[QaoaRound]) -> Circuit {
    assert!(!rounds.is_empty(), "QAOA needs at least one round");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.ry(q, -FRAC_PI_2);
        c.rz(q, FRAC_PI_2);
    }
    for (k, round) in rounds.iter().enumerate() {
        for &(a, b) in edges {
            zz_interaction(&mut c, a, b, 2.0 * round.gamma);
        }
        let mixer = if k + 1 == rounds.len() {
            PI
        } else {
            2.0 * round.beta
        };
        for q in 0..n {
            c.rx(q, mixer);
        }
    }
    c
}

/// QAOA on a ring (cycle graph) of `n` qubits — `qaoa_N` naming of the
/// paper with a 1-D layout.
pub fn qaoa_ring(n: usize, rounds: &[QaoaRound]) -> Circuit {
    assert!(n >= 3, "ring QAOA needs at least 3 qubits");
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    qaoa_on_edges(n, &edges, rounds)
}

/// QAOA on a `rows × cols` grid — matches the paper's `qaoa_64`
/// (8×8), `qaoa_121` (11×11) and `qaoa_225` (15×15) circuits.
pub fn qaoa_grid(rows: usize, cols: usize, rounds: &[QaoaRound]) -> Circuit {
    assert!(rows >= 1 && cols >= 1, "empty grid");
    let n = rows * cols;
    let q = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((q(r, c), q(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((q(r, c), q(r + 1, c)));
            }
        }
    }
    qaoa_on_edges(n, &edges, rounds)
}

/// QAOA with pseudo-random round angles (seeded, reproducible).
pub fn qaoa_grid_random(rows: usize, cols: usize, n_rounds: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let rounds: Vec<QaoaRound> = (0..n_rounds)
        .map(|_| QaoaRound {
            gamma: rng.random_range(0.1..1.0),
            beta: rng.random_range(0.1..1.0),
        })
        .collect();
    qaoa_grid(rows, cols, &rounds)
}

/// Hartree–Fock VQE basis-rotation circuit (`hf_N` naming of the paper).
///
/// Prepares the computational Slater determinant by applying `X` to the
/// first `n_occupied` qubits, then performs a triangular network of
/// nearest-neighbour [`Gate::Givens`] rotations (with interleaved `RZ`
/// phases) implementing an `n × n` orbital basis rotation — the
/// structure ReCirq's `hfvqe` module compiles to. Angles are seeded
/// and reproducible.
///
/// # Panics
///
/// Panics if `n_occupied > n` or `n == 0`.
pub fn hf_vqe(n: usize, n_occupied: usize, seed: u64) -> Circuit {
    assert!(n > 0, "empty circuit");
    assert!(n_occupied <= n, "cannot occupy more orbitals than qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n_occupied {
        c.x(q);
    }
    // Triangular Givens network: diagonal sweeps of adjacent rotations,
    // the canonical decomposition of a basis rotation.
    for layer in 0..n {
        let start = layer % 2;
        let mut any = false;
        for a in (start..n.saturating_sub(1)).step_by(2) {
            let theta = rng.random_range(-PI..PI);
            c.givens(a, a + 1, theta);
            c.rz(a + 1, rng.random_range(-PI..PI));
            any = true;
        }
        if !any {
            break;
        }
    }
    c
}

/// The eight CZ activation patterns of a supremacy-style grid cycle.
fn cz_pattern(rows: usize, cols: usize, pattern: usize) -> Vec<(usize, usize)> {
    let q = |r: usize, c: usize| r * cols + c;
    let mut pairs = Vec::new();
    match pattern % 8 {
        p @ 0..=3 => {
            // Horizontal bonds, split by column and row parity.
            let cpar = p & 1;
            let rpar = (p >> 1) & 1;
            for r in 0..rows {
                if r % 2 != rpar {
                    continue;
                }
                for c in 0..cols.saturating_sub(1) {
                    if c % 2 == cpar {
                        pairs.push((q(r, c), q(r, c + 1)));
                    }
                }
            }
        }
        p => {
            // Vertical bonds, split by row and column parity.
            let rpar = p & 1;
            let cpar = (p >> 1) & 1;
            for r in 0..rows.saturating_sub(1) {
                if r % 2 != rpar {
                    continue;
                }
                for c in 0..cols {
                    if c % 2 == cpar {
                        pairs.push((q(r, c), q(r + 1, c)));
                    }
                }
            }
        }
    }
    pairs
}

/// Supremacy-style random circuit on a `rows × cols` grid with `depth`
/// cycles (`inst_RxC_D` naming of the paper).
///
/// Structure: a Hadamard on every qubit, then `depth` cycles; each
/// cycle applies one of eight CZ patterns (cycled in a fixed order) and
/// a random single-qubit gate from `{√X, √Y, √W}` on every qubit that
/// is not part of a CZ this cycle, never repeating the gate previously
/// applied to the same qubit (Google's rule).
pub fn inst_grid(rows: usize, cols: usize, depth: usize, seed: u64) -> Circuit {
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    // Fixed pattern order used by the Google experiments.
    const ORDER: [usize; 8] = [0, 2, 1, 3, 4, 6, 5, 7];
    let gates = [Gate::SqrtX, Gate::SqrtY, Gate::SqrtW];
    let mut last: Vec<Option<usize>> = vec![None; n];
    for cycle in 0..depth {
        let pairs = cz_pattern(rows, cols, ORDER[cycle % 8]);
        let mut busy = vec![false; n];
        for &(a, b) in &pairs {
            c.cz(a, b);
            busy[a] = true;
            busy[b] = true;
        }
        for q in 0..n {
            if busy[q] {
                continue;
            }
            let choice = loop {
                let k = rng.random_range(0..gates.len());
                if last[q] != Some(k) {
                    break k;
                }
            };
            last[q] = Some(choice);
            c.apply(gates[choice].clone(), &[q]);
        }
    }
    c
}

/// GHZ state preparation circuit.
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// Quantum Fourier transform circuit (without the final swaps).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for target in 0..n {
        c.h(target);
        for ctrl in (target + 1)..n {
            let theta = PI / (1u64 << (ctrl - target)) as f64;
            c.apply(Gate::CPhase(theta), &[ctrl, target]);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_linalg::cr;

    #[test]
    fn qaoa_ring_counts() {
        let rounds = [QaoaRound {
            gamma: 0.4,
            beta: 0.3,
        }];
        let c = qaoa_ring(6, &rounds);
        // prep: 2 gates/qubit; edges: 6 edges × 3 gates; mixer: 6.
        assert_eq!(c.gate_count(), 12 + 18 + 6);
        assert_eq!(c.n_qubits(), 6);
    }

    #[test]
    fn qaoa_grid_edge_count() {
        let rounds = [QaoaRound {
            gamma: 0.4,
            beta: 0.3,
        }];
        let c = qaoa_grid(3, 3, &rounds);
        // 3x3 grid has 12 edges → 36 interaction gates + 18 prep + 9 mixer.
        assert_eq!(c.gate_count(), 18 + 36 + 9);
    }

    #[test]
    fn qaoa_fig1_structure_on_two_qubits() {
        // Fig. 1: two qubits, one round. First four gates are prep.
        let rounds = [QaoaRound {
            gamma: 0.25,
            beta: 0.1,
        }];
        let c = qaoa_on_edges(2, &[(0, 1)], &rounds);
        let names: Vec<String> = c.operations().iter().map(|o| o.gate.name()).collect();
        assert!(names[0].starts_with("Ry"));
        assert!(names[2].starts_with("Rz") || names[1].starts_with("Rz"));
        assert_eq!(names[4], "CX");
        assert!(names[5].starts_with("Rz"));
        assert_eq!(names[6], "CX");
        assert!(names[7].starts_with("Rx"));
    }

    #[test]
    fn zz_decomposition_matches_zz_gate() {
        // CX·RZ(θ)b·CX equals the ZZ(θ) gate exactly.
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(1, 0.8).cx(0, 1);
        let mut z = Circuit::new(2);
        z.zz(0, 1, 0.8);
        assert!(c.unitary().approx_eq(&z.unitary(), 1e-12));
    }

    #[test]
    fn hf_vqe_preserves_excitation_number() {
        // Givens rotations conserve Hamming weight, so the unitary is
        // block-diagonal in particle number: check ⟨x|U|y⟩ = 0 when
        // weight(x) ≠ weight(y), on 4 qubits.
        let c = hf_vqe(4, 2, 42);
        // The first n_occupied X gates flip weight; skip them by testing
        // the Givens part only: build circuit without X layer.
        let mut g_only = Circuit::new(4);
        for op in c.operations().iter().skip(2) {
            g_only.push(op.clone());
        }
        let ug = g_only.unitary();
        for x in 0..16u32 {
            for y in 0..16u32 {
                if x.count_ones() != y.count_ones() {
                    assert!(
                        ug[(x as usize, y as usize)].abs() < 1e-12,
                        "particle number violated at ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn hf_vqe_is_deterministic_in_seed() {
        assert_eq!(hf_vqe(6, 3, 7), hf_vqe(6, 3, 7));
        assert_ne!(hf_vqe(6, 3, 7), hf_vqe(6, 3, 8));
    }

    #[test]
    fn inst_grid_starts_with_hadamard_wall() {
        let c = inst_grid(2, 3, 4, 1);
        for (q, op) in c.operations().iter().take(6).enumerate() {
            assert_eq!(op.gate, Gate::H);
            assert_eq!(op.qubits, vec![q]);
        }
    }

    #[test]
    fn inst_grid_no_repeated_single_qubit_gate() {
        let c = inst_grid(3, 3, 20, 5);
        let mut last: Vec<Option<String>> = vec![None; 9];
        for op in c.operations().iter().skip(9) {
            if op.gate.arity() == 1 {
                let q = op.qubits[0];
                let name = op.gate.name();
                assert_ne!(last[q].as_deref(), Some(name.as_str()), "repeat on q{q}");
                last[q] = Some(name);
            }
        }
    }

    #[test]
    fn inst_grid_cz_patterns_tile_the_grid() {
        // Over 8 cycles every nearest-neighbour bond appears exactly once.
        let rows = 4;
        let cols = 4;
        let mut seen = std::collections::HashSet::new();
        for p in 0..8 {
            for (a, b) in cz_pattern(rows, cols, p) {
                assert!(seen.insert((a.min(b), a.max(b))), "bond repeated");
            }
        }
        // 4x4 grid: 2*4*3 = 24 bonds.
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn ghz_produces_cat_state() {
        let c = ghz(3);
        let u = c.unitary();
        let inv = std::f64::consts::FRAC_1_SQRT_2;
        assert!(u[(0, 0)].approx_eq(cr(inv), 1e-12));
        assert!(u[(7, 0)].approx_eq(cr(inv), 1e-12));
    }

    #[test]
    fn qft_on_basis_state_gives_uniform_magnitudes() {
        let c = qft(3);
        let u = c.unitary();
        for i in 0..8 {
            assert!((u[(i, 0)].abs() - 1.0 / 8f64.sqrt()).abs() < 1e-12);
        }
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn paper_circuit_sizes_are_in_regime() {
        // Paper: qaoa_64 has 1696 gates at depth 42. One round of our
        // 8x8 grid QAOA: 128 prep + 112 edges × 3 + 64 mixer = 528
        // gates; three rounds ≈ 1.7k gates, same regime.
        let c = qaoa_grid_random(8, 8, 3, 0);
        assert!(c.gate_count() > 1200 && c.gate_count() < 2200);
        assert_eq!(c.n_qubits(), 64);
    }
}
