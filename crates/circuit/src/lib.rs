#![warn(missing_docs)]
//! Quantum circuit intermediate representation and benchmark generators.
//!
//! * [`Gate`] — the gate library: every single-qubit gate of the paper's
//!   Table I plus the two-qubit gates used by superconducting hardware
//!   (CZ, CX, controlled-U, iSWAP, fSim, Givens, ZZ-interaction).
//! * [`Circuit`] — an ordered list of gate applications with builder
//!   methods, depth computation and exact unitary construction for
//!   small qubit counts.
//! * [`generators`] — the benchmark families of the paper's evaluation:
//!   QAOA circuits (ring / hardware-style), Hartree–Fock VQE
//!   basis-rotation (Givens ladder) circuits, and `inst_RxC_D`
//!   supremacy-style random circuits on a grid.
//!
//! # Example
//!
//! ```
//! use qns_circuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1); // Bell pair preparation
//! assert_eq!(c.gate_count(), 2);
//! assert_eq!(c.depth(), 2);
//! ```

pub mod circuit;
pub mod gate;
pub mod generators;
pub mod optimize;
pub mod text;

pub use circuit::{Circuit, Operation};
pub use gate::Gate;
pub use text::{from_text, to_text, CircuitTextError};
