//! The gate library.
//!
//! Matrices follow the conventions of the paper's Table I; rotation
//! gates use the physics convention `R_a(θ) = exp(-iθ·σ_a/2)`.

use qns_linalg::{c64, cr, Complex64, Matrix};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4, PI};
use std::fmt;

/// A quantum logic gate acting on one or two qubits.
///
/// Use [`Gate::matrix`] for the unitary (2×2 or 4×4) and
/// [`Gate::arity`] for the number of qubits it addresses.
///
/// ```
/// use qns_circuit::Gate;
/// assert_eq!(Gate::CZ.arity(), 2);
/// assert!(Gate::H.matrix().is_unitary(1e-12));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// `T = diag(1, e^{iπ/4})`.
    T,
    /// `T† = diag(1, e^{-iπ/4})`.
    Tdg,
    /// `√X` (used by Google supremacy circuits).
    SqrtX,
    /// `√Y` (used by Google supremacy circuits).
    SqrtY,
    /// `√W` with `W = (X+Y)/√2` (used by Google supremacy circuits).
    SqrtW,
    /// Rotation about X: `exp(-iθX/2)`.
    Rx(f64),
    /// Rotation about Y: `exp(-iθY/2)`.
    Ry(f64),
    /// Rotation about Z: `exp(-iθZ/2)`.
    Rz(f64),
    /// Phase rotation `diag(1, e^{iθ})`.
    Phase(f64),
    /// Arbitrary single-qubit unitary (validated on use).
    Custom1(Box<Matrix>),
    /// Controlled-Z.
    CZ,
    /// Controlled-X (CNOT); first qubit is the control.
    CX,
    /// Controlled-phase `diag(1,1,1,e^{iθ})`.
    CPhase(f64),
    /// Controlled arbitrary single-qubit unitary; first qubit controls.
    CU(Box<Matrix>),
    /// iSWAP.
    ISwap,
    /// Google `fSim(θ, φ)` gate.
    FSim(f64, f64),
    /// Givens rotation `exp(-iθ(XY - YX)/2)`-style planar rotation in the
    /// `{|01⟩, |10⟩}` subspace (the Hartree–Fock VQE primitive).
    Givens(f64),
    /// ZZ interaction `exp(-iθ Z⊗Z / 2)` (the QAOA cost primitive).
    ZZ(f64),
    /// Arbitrary two-qubit unitary (validated on use).
    Custom2(Box<Matrix>),
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        use Gate::*;
        match self {
            H | X | Y | Z | S | Sdg | T | Tdg | SqrtX | SqrtY | SqrtW | Rx(_) | Ry(_) | Rz(_)
            | Phase(_) | Custom1(_) => 1,
            CZ | CX | CPhase(_) | CU(_) | ISwap | FSim(_, _) | Givens(_) | ZZ(_) | Custom2(_) => 2,
        }
    }

    /// The gate's unitary matrix (2×2 for 1-qubit, 4×4 for 2-qubit).
    ///
    /// For two-qubit gates the first qubit indexes the more significant
    /// bit: basis order `|q0 q1⟩ ∈ {|00⟩, |01⟩, |10⟩, |11⟩}`.
    ///
    /// # Panics
    ///
    /// Panics if a `Custom1`/`Custom2`/`CU` payload has the wrong shape.
    pub fn matrix(&self) -> Matrix {
        use Gate::*;
        let inv = FRAC_1_SQRT_2;
        match self {
            H => Matrix::from_rows(&[vec![cr(inv), cr(inv)], vec![cr(inv), cr(-inv)]]),
            X => Matrix::from_rows(&[vec![cr(0.0), cr(1.0)], vec![cr(1.0), cr(0.0)]]),
            Y => Matrix::from_rows(&[vec![cr(0.0), c64(0.0, -1.0)], vec![c64(0.0, 1.0), cr(0.0)]]),
            Z => Matrix::from_rows(&[vec![cr(1.0), cr(0.0)], vec![cr(0.0), cr(-1.0)]]),
            S => Matrix::from_diag(&[cr(1.0), Complex64::I]),
            Sdg => Matrix::from_diag(&[cr(1.0), -Complex64::I]),
            T => Matrix::from_diag(&[cr(1.0), Complex64::from_polar(1.0, FRAC_PI_4)]),
            Tdg => Matrix::from_diag(&[cr(1.0), Complex64::from_polar(1.0, -FRAC_PI_4)]),
            SqrtX => Matrix::from_rows(&[
                vec![c64(0.5, 0.5), c64(0.5, -0.5)],
                vec![c64(0.5, -0.5), c64(0.5, 0.5)],
            ]),
            SqrtY => Matrix::from_rows(&[
                vec![c64(0.5, 0.5), c64(-0.5, -0.5)],
                vec![c64(0.5, 0.5), c64(0.5, 0.5)],
            ]),
            SqrtW => {
                // √W where W = (X+Y)/√2; matrix from the supremacy paper:
                // [[1, -√i·? ]] — constructed numerically as exp(-iπW/4)·phase.
                // Use the published form:
                //   sqrt(W) = [[1+i, -i√2·e^{iπ/4}·…]]
                // Simplest robust construction: W is Hermitian unitary, so
                // √W = (I + iW)·e^{-iπ/4}/√2 · … — build via spectral form.
                let w = Matrix::from_rows(&[
                    vec![cr(0.0), c64(inv, -inv)],
                    vec![c64(inv, inv), cr(0.0)],
                ]);
                sqrt_hermitian_unitary(&w)
            }
            Rx(theta) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                Matrix::from_rows(&[vec![cr(c), c64(0.0, -s)], vec![c64(0.0, -s), cr(c)]])
            }
            Ry(theta) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                Matrix::from_rows(&[vec![cr(c), cr(-s)], vec![cr(s), cr(c)]])
            }
            Rz(theta) => Matrix::from_diag(&[
                Complex64::from_polar(1.0, -theta / 2.0),
                Complex64::from_polar(1.0, theta / 2.0),
            ]),
            Phase(theta) => Matrix::from_diag(&[cr(1.0), Complex64::from_polar(1.0, *theta)]),
            Custom1(m) => {
                assert_eq!((m.rows(), m.cols()), (2, 2), "Custom1 must be 2×2");
                (**m).clone()
            }
            CZ => Matrix::from_diag(&[cr(1.0), cr(1.0), cr(1.0), cr(-1.0)]),
            CX => Matrix::from_rows(&[
                vec![cr(1.0), cr(0.0), cr(0.0), cr(0.0)],
                vec![cr(0.0), cr(1.0), cr(0.0), cr(0.0)],
                vec![cr(0.0), cr(0.0), cr(0.0), cr(1.0)],
                vec![cr(0.0), cr(0.0), cr(1.0), cr(0.0)],
            ]),
            CPhase(theta) => Matrix::from_diag(&[
                cr(1.0),
                cr(1.0),
                cr(1.0),
                Complex64::from_polar(1.0, *theta),
            ]),
            CU(u) => {
                assert_eq!((u.rows(), u.cols()), (2, 2), "CU payload must be 2×2");
                let mut m = Matrix::identity(4);
                for i in 0..2 {
                    for j in 0..2 {
                        m[(2 + i, 2 + j)] = u[(i, j)];
                    }
                }
                m
            }
            ISwap => Matrix::from_rows(&[
                vec![cr(1.0), cr(0.0), cr(0.0), cr(0.0)],
                vec![cr(0.0), cr(0.0), Complex64::I, cr(0.0)],
                vec![cr(0.0), Complex64::I, cr(0.0), cr(0.0)],
                vec![cr(0.0), cr(0.0), cr(0.0), cr(1.0)],
            ]),
            FSim(theta, phi) => {
                let (c, s) = (theta.cos(), theta.sin());
                Matrix::from_rows(&[
                    vec![cr(1.0), cr(0.0), cr(0.0), cr(0.0)],
                    vec![cr(0.0), cr(c), c64(0.0, -s), cr(0.0)],
                    vec![cr(0.0), c64(0.0, -s), cr(c), cr(0.0)],
                    vec![cr(0.0), cr(0.0), cr(0.0), Complex64::from_polar(1.0, -phi)],
                ])
            }
            Givens(theta) => {
                let (c, s) = (theta.cos(), theta.sin());
                Matrix::from_rows(&[
                    vec![cr(1.0), cr(0.0), cr(0.0), cr(0.0)],
                    vec![cr(0.0), cr(c), cr(-s), cr(0.0)],
                    vec![cr(0.0), cr(s), cr(c), cr(0.0)],
                    vec![cr(0.0), cr(0.0), cr(0.0), cr(1.0)],
                ])
            }
            ZZ(theta) => {
                let p = Complex64::from_polar(1.0, -theta / 2.0);
                let m = Complex64::from_polar(1.0, theta / 2.0);
                Matrix::from_diag(&[p, m, m, p])
            }
            Custom2(m) => {
                assert_eq!((m.rows(), m.cols()), (4, 4), "Custom2 must be 4×4");
                (**m).clone()
            }
        }
    }

    /// Short display name (e.g. `"H"`, `"Rz(1.571)"`).
    pub fn name(&self) -> String {
        use Gate::*;
        match self {
            H => "H".into(),
            X => "X".into(),
            Y => "Y".into(),
            Z => "Z".into(),
            S => "S".into(),
            Sdg => "S†".into(),
            T => "T".into(),
            Tdg => "T†".into(),
            SqrtX => "√X".into(),
            SqrtY => "√Y".into(),
            SqrtW => "√W".into(),
            Rx(t) => format!("Rx({t:.3})"),
            Ry(t) => format!("Ry({t:.3})"),
            Rz(t) => format!("Rz({t:.3})"),
            Phase(t) => format!("P({t:.3})"),
            Custom1(_) => "U1".into(),
            CZ => "CZ".into(),
            CX => "CX".into(),
            CPhase(t) => format!("CP({t:.3})"),
            CU(_) => "CU".into(),
            ISwap => "iSWAP".into(),
            FSim(t, p) => format!("fSim({t:.3},{p:.3})"),
            Givens(t) => format!("G({t:.3})"),
            ZZ(t) => format!("ZZ({t:.3})"),
            Custom2(_) => "U2".into(),
        }
    }

    /// The adjoint (inverse) gate.
    pub fn dagger(&self) -> Gate {
        use Gate::*;
        match self {
            H | X | Y | Z | CZ | CX => self.clone(),
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            Phase(t) => Phase(-t),
            CPhase(t) => CPhase(-t),
            Givens(t) => Givens(-t),
            ZZ(t) => ZZ(-t),
            FSim(t, p) => Custom2(Box::new(FSim(*t, *p).matrix().adjoint())),
            SqrtX | SqrtY | SqrtW | ISwap => match self {
                SqrtX => Custom1(Box::new(SqrtX.matrix().adjoint())),
                SqrtY => Custom1(Box::new(SqrtY.matrix().adjoint())),
                SqrtW => Custom1(Box::new(SqrtW.matrix().adjoint())),
                _ => Custom2(Box::new(ISwap.matrix().adjoint())),
            },
            Custom1(m) => Custom1(Box::new(m.adjoint())),
            CU(u) => CU(Box::new(u.adjoint())),
            Custom2(m) => Custom2(Box::new(m.adjoint())),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Principal square root of a Hermitian unitary `W` (eigenvalues ±1):
/// `√W = P₊ + i·P₋` written via `(I+W)/2 + i·(I−W)/2`, normalized to be
/// unitary. Used for `√W`; also correct for `√X`, `√Y`.
fn sqrt_hermitian_unitary(w: &Matrix) -> Matrix {
    let n = w.rows();
    let id = Matrix::identity(n);
    // P+ = (I+W)/2 projects onto eigenvalue +1, P- onto -1.
    let p_plus = (&id + w).scale(cr(0.5));
    let p_minus = (&id - w).scale(cr(0.5));
    // sqrt picks e^{i·0}=1 on +1 and e^{iπ/2}=i on −1 branch.
    &p_plus + &p_minus.scale(Complex64::I)
}

/// Returns `true` when `g` is diagonal in the computational basis.
pub fn is_diagonal_gate(g: &Gate) -> bool {
    use Gate::*;
    matches!(
        g,
        Z | S | Sdg | T | Tdg | Rz(_) | Phase(_) | CZ | CPhase(_) | ZZ(_)
    )
}

/// All parameter-free single-qubit gates (useful for randomized tests).
pub fn fixed_single_qubit_gates() -> Vec<Gate> {
    vec![
        Gate::H,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::SqrtX,
        Gate::SqrtY,
        Gate::SqrtW,
    ]
}

#[allow(unused_imports)]
use std::f64::consts as _consts;
const _: f64 = PI; // keep PI import used in all feature configurations

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixed_gates_are_unitary() {
        for g in fixed_single_qubit_gates() {
            assert!(g.matrix().is_unitary(1e-12), "{g} not unitary");
        }
        for g in [
            Gate::CZ,
            Gate::CX,
            Gate::ISwap,
            Gate::FSim(0.3, 0.7),
            Gate::Givens(0.4),
            Gate::ZZ(1.1),
            Gate::CPhase(0.9),
        ] {
            assert!(g.matrix().is_unitary(1e-12), "{g} not unitary");
        }
    }

    #[test]
    fn rotations_are_unitary_for_many_angles() {
        for k in 0..12 {
            let t = k as f64 * PI / 6.0;
            for g in [Gate::Rx(t), Gate::Ry(t), Gate::Rz(t), Gate::Phase(t)] {
                assert!(g.matrix().is_unitary(1e-12), "{g} not unitary");
            }
        }
    }

    #[test]
    fn sqrt_gates_square_to_base() {
        let x = Gate::X.matrix();
        let sx = Gate::SqrtX.matrix();
        assert!(sx.matmul(&sx).approx_eq(&x, 1e-12));

        let y = Gate::Y.matrix();
        let sy = Gate::SqrtY.matrix();
        assert!(sy.matmul(&sy).approx_eq(&y, 1e-12));

        let inv = FRAC_1_SQRT_2;
        let w = Matrix::from_rows(&[vec![cr(0.0), c64(inv, -inv)], vec![c64(inv, inv), cr(0.0)]]);
        let sw = Gate::SqrtW.matrix();
        assert!(sw.matmul(&sw).approx_eq(&w, 1e-12));
    }

    #[test]
    fn rotation_decomposition_h_equals_phase_ry() {
        // H = e^{iπ/2}·Rz(π)·? — simpler known identity: H = X·Ry(π/2)·(global phase)
        // Check: Ry(π/2) then X equals H up to global phase.
        let lhs = Gate::X.matrix().matmul(&Gate::Ry(PI / 2.0).matrix());
        let h = Gate::H.matrix();
        // Compare up to global phase via |⟨lhs, h⟩| = 2.
        let mut overlap = Complex64::ZERO;
        for i in 0..2 {
            for j in 0..2 {
                overlap += lhs[(i, j)].conj() * h[(i, j)];
            }
        }
        assert!((overlap.abs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cz_is_symmetric_under_qubit_swap() {
        let cz = Gate::CZ.matrix();
        // SWAP·CZ·SWAP = CZ
        let swap = Matrix::from_rows(&[
            vec![cr(1.0), cr(0.0), cr(0.0), cr(0.0)],
            vec![cr(0.0), cr(0.0), cr(1.0), cr(0.0)],
            vec![cr(0.0), cr(1.0), cr(0.0), cr(0.0)],
            vec![cr(0.0), cr(0.0), cr(0.0), cr(1.0)],
        ]);
        assert!(swap.matmul(&cz).matmul(&swap).approx_eq(&cz, 1e-14));
    }

    #[test]
    fn cu_with_x_payload_is_cnot() {
        let cu = Gate::CU(Box::new(Gate::X.matrix()));
        assert!(cu.matrix().approx_eq(&Gate::CX.matrix(), 1e-14));
    }

    #[test]
    fn cphase_pi_is_cz() {
        assert!(Gate::CPhase(PI)
            .matrix()
            .approx_eq(&Gate::CZ.matrix(), 1e-12));
    }

    #[test]
    fn dagger_inverts() {
        for g in [
            Gate::H,
            Gate::T,
            Gate::SqrtX,
            Gate::SqrtW,
            Gate::Rx(0.7),
            Gate::FSim(0.3, 0.9),
            Gate::ISwap,
            Gate::Givens(0.5),
            Gate::ZZ(0.8),
        ] {
            let m = g.matrix();
            let d = g.dagger().matrix();
            let n = m.rows();
            assert!(
                m.matmul(&d).approx_eq(&Matrix::identity(n), 1e-12),
                "{g}·{g}† ≠ I"
            );
        }
    }

    #[test]
    fn zz_phases_match_definition() {
        // exp(-iθ/2 Z⊗Z): |00⟩,|11⟩ get e^{-iθ/2}; |01⟩,|10⟩ get e^{+iθ/2}.
        let t = 0.6;
        let m = Gate::ZZ(t).matrix();
        assert!(m[(0, 0)].approx_eq(Complex64::from_polar(1.0, -t / 2.0), 1e-14));
        assert!(m[(1, 1)].approx_eq(Complex64::from_polar(1.0, t / 2.0), 1e-14));
        assert!(m[(3, 3)].approx_eq(Complex64::from_polar(1.0, -t / 2.0), 1e-14));
    }

    #[test]
    fn givens_mixes_only_middle_block() {
        let g = Gate::Givens(0.3).matrix();
        assert!(g[(0, 0)].approx_eq(cr(1.0), 1e-14));
        assert!(g[(3, 3)].approx_eq(cr(1.0), 1e-14));
        assert!(g[(1, 2)].approx_eq(cr(-(0.3f64).sin()), 1e-14));
    }

    #[test]
    fn diagonal_detection() {
        assert!(is_diagonal_gate(&Gate::CZ));
        assert!(is_diagonal_gate(&Gate::Rz(0.2)));
        assert!(!is_diagonal_gate(&Gate::H));
        assert!(!is_diagonal_gate(&Gate::CX));
    }
}
