//! Measurement utilities: basis-outcome probabilities, shot sampling,
//! and partial traces — what a user does after simulating.

use crate::density::DensityMatrix;
use qns_linalg::{Complex64, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Computational-basis outcome probabilities of a statevector.
pub fn probabilities(state: &[Complex64]) -> Vec<f64> {
    state.iter().map(|z| z.norm_sqr()).collect()
}

/// Samples `shots` computational-basis outcomes from a statevector,
/// returning outcome → count.
///
/// # Panics
///
/// Panics if the state has non-unit norm beyond `1e-6`.
pub fn sample_counts(state: &[Complex64], shots: usize, seed: u64) -> HashMap<usize, usize> {
    let probs = probabilities(state);
    let total: f64 = probs.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "state is not normalized");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = HashMap::new();
    for _ in 0..shots {
        let mut u = rng.random_range(0.0..1.0) * total;
        let mut outcome = probs.len() - 1;
        for (i, p) in probs.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                outcome = i;
                break;
            }
        }
        *counts.entry(outcome).or_insert(0) += 1;
    }
    counts
}

/// Marginal probability of measuring `1` on each qubit of a
/// statevector (qubit 0 is the most significant bit).
pub fn one_probabilities(state: &[Complex64], n: usize) -> Vec<f64> {
    assert_eq!(state.len(), 1usize << n, "state length mismatch");
    let mut out = vec![0.0; n];
    for (idx, z) in state.iter().enumerate() {
        let p = z.norm_sqr();
        if p == 0.0 {
            continue;
        }
        for (q, slot) in out.iter_mut().enumerate() {
            if (idx >> (n - 1 - q)) & 1 == 1 {
                *slot += p;
            }
        }
    }
    out
}

/// Partial trace of a density matrix, keeping the qubits in `keep`
/// (ascending order of the original indices; the result's qubit `k`
/// corresponds to `keep[k]`).
///
/// # Panics
///
/// Panics if `keep` is empty, unsorted, repeats, or is out of range.
pub fn partial_trace(rho: &DensityMatrix, keep: &[usize]) -> Matrix {
    let n = rho.n_qubits();
    assert!(!keep.is_empty(), "must keep at least one qubit");
    for w in keep.windows(2) {
        assert!(w[0] < w[1], "keep list must be strictly ascending");
    }
    assert!(
        *keep.last().expect("non-empty") < n,
        "kept qubit out of range"
    );

    let full = rho.to_matrix();
    let k = keep.len();
    let kept_dim = 1usize << k;
    let traced: Vec<usize> = (0..n).filter(|q| !keep.contains(q)).collect();
    let traced_dim = 1usize << traced.len();

    // Compose a full index from kept bits and traced bits.
    let build = |kept_bits: usize, traced_bits: usize| -> usize {
        let mut idx = 0usize;
        for (pos, &q) in keep.iter().enumerate() {
            let bit = (kept_bits >> (k - 1 - pos)) & 1;
            idx |= bit << (n - 1 - q);
        }
        for (pos, &q) in traced.iter().enumerate() {
            let bit = (traced_bits >> (traced.len() - 1 - pos)) & 1;
            idx |= bit << (n - 1 - q);
        }
        idx
    };

    let mut out = Matrix::zeros(kept_dim, kept_dim);
    for r in 0..kept_dim {
        for c in 0..kept_dim {
            let mut acc = Complex64::ZERO;
            for t in 0..traced_dim {
                acc += full[(build(r, t), build(c, t))];
            }
            out[(r, c)] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density;
    use crate::statevector::{ghz_state, run, zero_state};
    use qns_circuit::generators::ghz;
    use qns_linalg::cr;
    use qns_noise::NoisyCircuit;

    #[test]
    fn probabilities_sum_to_one() {
        let s = ghz_state(4);
        let total: f64 = probabilities(&s).iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let s = ghz_state(3);
        let counts = sample_counts(&s, 20_000, 7);
        let p0 = *counts.get(&0).unwrap_or(&0) as f64 / 20_000.0;
        let p7 = *counts.get(&7).unwrap_or(&0) as f64 / 20_000.0;
        assert!((p0 - 0.5).abs() < 0.02, "p0 = {p0}");
        assert!((p7 - 0.5).abs() < 0.02, "p7 = {p7}");
        assert_eq!(counts.keys().filter(|&&k| k != 0 && k != 7).count(), 0);
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let s = run(&ghz(3), &zero_state(3));
        assert_eq!(sample_counts(&s, 100, 5), sample_counts(&s, 100, 5));
    }

    #[test]
    fn one_probabilities_of_ghz() {
        let s = ghz_state(4);
        for p in one_probabilities(&s, 4) {
            assert!((p - 0.5).abs() < 1e-12);
        }
        let z = zero_state(3);
        for p in one_probabilities(&z, 3) {
            assert!(p.abs() < 1e-12);
        }
    }

    #[test]
    fn partial_trace_of_product_state() {
        // |01⟩ traced over qubit 1 leaves |0⟩⟨0|.
        let mut state = vec![Complex64::ZERO; 4];
        state[1] = Complex64::ONE; // |01⟩
        let rho = density::DensityMatrix::from_pure(&state);
        let reduced = partial_trace(&rho, &[0]);
        assert!(reduced[(0, 0)].approx_eq(cr(1.0), 1e-12));
        assert!(reduced[(1, 1)].approx_eq(cr(0.0), 1e-12));
    }

    #[test]
    fn partial_trace_of_ghz_is_maximally_mixed() {
        let rho = density::DensityMatrix::from_pure(&ghz_state(3));
        let reduced = partial_trace(&rho, &[1]);
        assert!(reduced.approx_eq(&Matrix::identity(2).scale(cr(0.5)), 1e-12));
        // reduced state of two qubits: diagonal (0.5, 0, 0, 0.5).
        let pair = partial_trace(&rho, &[0, 2]);
        assert!(pair[(0, 0)].approx_eq(cr(0.5), 1e-12));
        assert!(pair[(3, 3)].approx_eq(cr(0.5), 1e-12));
        assert!(pair[(0, 3)].abs() < 1e-12, "coherence must be traced away");
    }

    #[test]
    fn partial_trace_preserves_trace() {
        let noisy = NoisyCircuit::inject_random(
            ghz(4),
            &qns_noise::channels::amplitude_damping(0.2),
            3,
            13,
        );
        let rho = density::run(&noisy, &zero_state(4));
        let reduced = partial_trace(&rho, &[0, 2]);
        assert!((reduced.trace().re - 1.0).abs() < 1e-10);
        assert!(reduced.is_hermitian(1e-10));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_keep_panics() {
        let rho = density::DensityMatrix::from_pure(&zero_state(3));
        let _ = partial_trace(&rho, &[2, 0]);
    }
}
