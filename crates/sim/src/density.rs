//! The MM-based (matrix-multiplication) exact noisy simulator.
//!
//! A density matrix on `n` qubits is stored as a flat buffer of length
//! `4^n` viewed as a `2n`-bit register: the first `n` bits index the
//! row, the last `n` bits the column. Gates then act as single/double
//! kernels on the row bits together with their conjugates on the
//! column bits, and channels as Kraus sums — `O(4^n)` memory, the
//! scaling that limits this baseline to small circuits in the paper's
//! Table II.

use crate::kernels;
use qns_circuit::Operation;
use qns_linalg::{Complex64, Matrix};
use qns_noise::{Element, Kraus, NoisyCircuit};

/// A dense density matrix on `n` qubits.
///
/// ```
/// use qns_sim::density::DensityMatrix;
/// use qns_sim::statevector::ghz_state;
///
/// let rho = DensityMatrix::from_pure(&ghz_state(2));
/// assert!((rho.trace() - 1.0).abs() < 1e-12);
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct DensityMatrix {
    n: usize,
    data: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|ψ⟩⟨ψ|`.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or exceeds 2^13.
    pub fn from_pure(psi: &[Complex64]) -> Self {
        let dim = psi.len();
        assert!(dim.is_power_of_two(), "state length must be a power of two");
        let n = dim.trailing_zeros() as usize;
        assert!(n <= 13, "density matrix too large");
        let mut data = Vec::with_capacity(dim * dim);
        for &a in psi {
            for &b in psi {
                data.push(a * b.conj());
            }
        }
        DensityMatrix { n, data }
    }

    /// The maximally mixed state `I/2^n`.
    pub fn maximally_mixed(n: usize) -> Self {
        let dim = 1usize << n;
        let mut data = vec![Complex64::ZERO; dim * dim];
        for i in 0..dim {
            data[i * dim + i] = Complex64::ONE / dim as f64;
        }
        DensityMatrix { n, data }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Hilbert space dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        1usize << self.n
    }

    /// Converts to a [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.dim(), self.dim(), self.data.clone())
    }

    /// The trace (should be 1 for a normalized state).
    pub fn trace(&self) -> f64 {
        let dim = self.dim();
        (0..dim).map(|i| self.data[i * dim + i].re).sum()
    }

    /// The purity `tr(ρ²)`.
    pub fn purity(&self) -> f64 {
        // tr(ρ²) = Σ_{rc} ρ_rc · ρ_cr = Σ |ρ_rc|² for Hermitian ρ.
        self.data.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Applies a unitary gate.
    ///
    /// # Panics
    ///
    /// Panics if qubits are out of range.
    pub fn apply_operation(&mut self, op: &Operation) {
        let bits = 2 * self.n;
        match op.qubits.len() {
            1 => {
                let q = op.qubits[0];
                let m = op.gate.matrix();
                kernels::apply_single(&mut self.data, bits, q, &m);
                kernels::apply_single(&mut self.data, bits, self.n + q, &m.conj());
            }
            2 => {
                let (q0, q1) = (op.qubits[0], op.qubits[1]);
                let m = op.gate.matrix();
                kernels::apply_double(&mut self.data, bits, q0, q1, &m);
                kernels::apply_double(&mut self.data, bits, self.n + q0, self.n + q1, &m.conj());
            }
            _ => unreachable!("gates are 1- or 2-qubit"),
        }
    }

    /// Applies a single-qubit channel on `qubit`: `ρ ← Σ E_k ρ E_k†`.
    ///
    /// # Panics
    ///
    /// Panics if the channel is not single-qubit or the qubit is out of
    /// range.
    pub fn apply_channel(&mut self, qubit: usize, channel: &Kraus) {
        assert_eq!(channel.dim(), 2, "expected a single-qubit channel");
        assert!(qubit < self.n, "qubit out of range");
        let bits = 2 * self.n;
        let mut acc = vec![Complex64::ZERO; self.data.len()];
        for e in channel.operators() {
            let mut term = self.data.clone();
            kernels::apply_single(&mut term, bits, qubit, e);
            kernels::apply_single(&mut term, bits, self.n + qubit, &e.conj());
            for (a, t) in acc.iter_mut().zip(&term) {
                *a += *t;
            }
        }
        self.data = acc;
    }

    /// The expectation `⟨v|ρ|v⟩` (real for Hermitian ρ).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != 2^n`.
    pub fn expectation(&self, v: &[Complex64]) -> f64 {
        let dim = self.dim();
        assert_eq!(v.len(), dim, "test state length mismatch");
        let mut acc = Complex64::ZERO;
        for r in 0..dim {
            let vr = v[r].conj();
            if vr == Complex64::ZERO {
                continue;
            }
            for c in 0..dim {
                acc += vr * self.data[r * dim + c] * v[c];
            }
        }
        acc.re
    }

    /// A matrix element `⟨x|ρ|y⟩` for arbitrary bra/ket vectors.
    pub fn matrix_element(&self, x: &[Complex64], y: &[Complex64]) -> Complex64 {
        let dim = self.dim();
        assert_eq!(x.len(), dim, "bra length mismatch");
        assert_eq!(y.len(), dim, "ket length mismatch");
        let mut acc = Complex64::ZERO;
        for r in 0..dim {
            let xr = x[r].conj();
            if xr == Complex64::ZERO {
                continue;
            }
            for c in 0..dim {
                acc += xr * self.data[r * dim + c] * y[c];
            }
        }
        acc
    }

    /// Validates Hermiticity, unit trace and positive semi-definiteness
    /// (eigenvalues ≥ −tol).
    pub fn is_valid_state(&self, tol: f64) -> bool {
        let m = self.to_matrix();
        if !m.is_hermitian(tol) || (self.trace() - 1.0).abs() > tol {
            return false;
        }
        qns_linalg::eigh(&m).min_eigenvalue() >= -tol
    }
}

/// Runs a noisy circuit on `|ψ⟩⟨ψ|` and returns the final density
/// matrix — the MM-based exact method.
///
/// # Panics
///
/// Panics if `psi.len() != 2^n`.
pub fn run(noisy: &NoisyCircuit, psi: &[Complex64]) -> DensityMatrix {
    let mut rho = DensityMatrix::from_pure(psi);
    assert_eq!(
        rho.n_qubits(),
        noisy.n_qubits(),
        "state/circuit size mismatch"
    );
    for el in noisy.elements() {
        match el {
            Element::Gate(op) => rho.apply_operation(op),
            Element::Noise(e) => rho.apply_channel(e.qubit, &e.kraus),
        }
    }
    rho
}

/// The paper's Problem 1 via exact density-matrix evolution:
/// `⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`.
pub fn expectation(noisy: &NoisyCircuit, psi: &[Complex64], v: &[Complex64]) -> f64 {
    run(noisy, psi).expectation(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::{basis_state, ghz_state, run as sv_run, zero_state};
    use qns_circuit::generators::{ghz, inst_grid, qaoa_ring, QaoaRound};
    use qns_circuit::Circuit;
    use qns_noise::channels;

    #[test]
    fn noiseless_density_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(2).cz(1, 2).ry(0, 0.3);
        let psi = zero_state(3);
        let rho = run(&NoisyCircuit::noiseless(c.clone()), &psi);
        let out = sv_run(&c, &psi);
        let pure = DensityMatrix::from_pure(&out);
        assert!(rho.to_matrix().approx_eq(&pure.to_matrix(), 1e-12));
    }

    #[test]
    fn trace_preserved_under_noise() {
        let noisy = NoisyCircuit::inject_random(ghz(4), &channels::amplitude_damping(0.1), 5, 3);
        let rho = run(&noisy, &zero_state(4));
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.is_valid_state(1e-9));
    }

    #[test]
    fn purity_decreases_with_noise() {
        let clean = run(&NoisyCircuit::noiseless(ghz(3)), &zero_state(3));
        let noisy = run(
            &NoisyCircuit::inject_random(ghz(3), &channels::depolarizing(0.05), 3, 1),
            &zero_state(3),
        );
        assert!((clean.purity() - 1.0).abs() < 1e-12);
        assert!(noisy.purity() < clean.purity());
    }

    #[test]
    fn expectation_on_ghz_drops_with_noise() {
        let v = ghz_state(4);
        let clean = expectation(&NoisyCircuit::noiseless(ghz(4)), &zero_state(4), &v);
        assert!((clean - 1.0).abs() < 1e-12);
        let noisy = NoisyCircuit::inject_random(ghz(4), &channels::depolarizing(0.02), 4, 5);
        let f = expectation(&noisy, &zero_state(4), &v);
        assert!(f < 1.0 && f > 0.8);
    }

    #[test]
    fn depolarizing_everything_gives_mixed_state() {
        // Full-strength depolarizing on one qubit of |0⟩: ρ = I/2 mix
        // on that qubit.
        let mut c = Circuit::new(1);
        c.x(0).x(0); // identity-ish circuit so noise dominates
        let noisy = NoisyCircuit::new(
            c,
            vec![qns_noise::NoiseEvent {
                after_gate: 1,
                qubit: 0,
                kraus: channels::depolarizing(0.75), // fully depolarizing
            }],
        );
        let rho = run(&noisy, &zero_state(1));
        // (1−p)ρ + p/3·(...) at p=0.75 sends |0⟩⟨0| to I/2.
        assert!((rho.expectation(&basis_state(1, 0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn matrix_element_hermitian_symmetry() {
        let noisy = NoisyCircuit::inject_random(ghz(3), &channels::phase_damping(0.2), 2, 7);
        let rho = run(&noisy, &zero_state(3));
        let x = basis_state(3, 2);
        let y = basis_state(3, 5);
        let xy = rho.matrix_element(&x, &y);
        let yx = rho.matrix_element(&y, &x);
        assert!(xy.approx_eq(yx.conj(), 1e-12));
    }

    #[test]
    fn qaoa_noisy_fidelity_sane() {
        let rounds = [QaoaRound {
            gamma: 0.35,
            beta: 0.2,
        }];
        let c = qaoa_ring(4, &rounds);
        let ideal = sv_run(&c, &zero_state(4));
        let noisy =
            NoisyCircuit::inject_random(c, &channels::thermal_relaxation(30.0, 40.0, 25.0), 3, 11);
        let f = expectation(&noisy, &zero_state(4), &ideal);
        assert!(f > 0.99 && f <= 1.0 + 1e-9, "fidelity {f}");
    }

    #[test]
    fn supremacy_circuit_probabilities_sum_to_one() {
        let c = inst_grid(2, 2, 6, 2);
        let noisy = NoisyCircuit::inject_random(c, &channels::depolarizing(0.01), 2, 4);
        let rho = run(&noisy, &zero_state(4));
        let total: f64 = (0..16).map(|i| rho.expectation(&basis_state(4, i))).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn maximally_mixed_is_noise_fixed_point() {
        let mut rho = DensityMatrix::maximally_mixed(2);
        rho.apply_channel(0, &channels::depolarizing(0.3));
        rho.apply_channel(1, &channels::phase_flip(0.4));
        let expect = DensityMatrix::maximally_mixed(2);
        assert!(rho.to_matrix().approx_eq(&expect.to_matrix(), 1e-12));
    }
}
