//! The quantum trajectories (Monte-Carlo) method.
//!
//! Each trajectory runs the circuit on a statevector; at every noise
//! event one Kraus operator is sampled — with state-dependent
//! probabilities `q_k = ‖E_k|φ⟩‖²` in the general case, or with fixed
//! probabilities when the channel is mixed-unitary (the qsim fast
//! path). The estimator `|⟨v|φ⟩|²` is unbiased for
//! `⟨v|E_N(|ψ⟩⟨ψ|)|v⟩`, converging as `O(1/√r)` in the number of
//! samples `r` — the scaling the paper compares against.

use crate::kernels;
use crate::statevector::apply_operation;
use qns_linalg::{Complex64, Matrix};
use qns_noise::{Element, Kraus, NoisyCircuit};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Aggregated result of a trajectory estimation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectoryEstimate {
    /// Sample mean of `|⟨v|φ⟩|²`.
    pub mean: f64,
    /// Sample standard deviation of the per-trajectory estimator.
    pub std_dev: f64,
    /// Standard error of the mean (`std_dev / √samples`).
    pub std_error: f64,
    /// Number of trajectories run.
    pub samples: usize,
}

/// How Kraus operators are sampled at noise events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// State-dependent norm sampling (general channels).
    #[default]
    General,
    /// Fixed-probability sampling when the channel is mixed-unitary;
    /// falls back to [`SamplingStrategy::General`] otherwise.
    MixedUnitaryFastPath,
}

/// Decomposes a channel as a mixture of unitaries `Σ p_k U_k ρ U_k†`
/// if every Kraus operator satisfies `E_k†E_k = p_k·I`.
///
/// Returns `(p_k, U_k)` pairs with `Σ p_k = 1`, or `None`.
pub fn mixed_unitary_decomposition(channel: &Kraus) -> Option<Vec<(f64, Matrix)>> {
    let dim = channel.dim();
    let id = Matrix::identity(dim);
    let mut out = Vec::with_capacity(channel.len());
    for e in channel.operators() {
        let g = e.adjoint().matmul(e);
        let p = g.trace().re / dim as f64;
        if p < 0.0 || (&g - &id.scale(qns_linalg::cr(p))).max_abs() > 1e-12 {
            return None;
        }
        if p <= 1e-300 {
            continue;
        }
        out.push((p, e.scale(qns_linalg::cr(1.0 / p.sqrt()))));
    }
    Some(out)
}

/// Runs one trajectory and returns the estimator `|⟨v|φ⟩|²`.
///
/// # Panics
///
/// Panics if state lengths mismatch the circuit.
pub fn run_single(
    noisy: &NoisyCircuit,
    psi: &[Complex64],
    v: &[Complex64],
    strategy: SamplingStrategy,
    rng: &mut StdRng,
) -> f64 {
    let n = noisy.n_qubits();
    assert_eq!(psi.len(), 1usize << n, "input state length mismatch");
    assert_eq!(v.len(), 1usize << n, "test state length mismatch");
    let mut state = psi.to_vec();
    for el in noisy.elements() {
        match el {
            Element::Gate(op) => apply_operation(&mut state, n, op),
            Element::Noise(e) => sample_noise(&mut state, n, e.qubit, &e.kraus, strategy, rng),
        }
    }
    qns_linalg::inner_product(v, &state).norm_sqr()
}

/// Applies one noise event by sampling a Kraus operator.
fn sample_noise(
    state: &mut Vec<Complex64>,
    n: usize,
    qubit: usize,
    channel: &Kraus,
    strategy: SamplingStrategy,
    rng: &mut StdRng,
) {
    if strategy == SamplingStrategy::MixedUnitaryFastPath {
        if let Some(mix) = mixed_unitary_decomposition(channel) {
            let mut u = rng.random_range(0.0..1.0);
            for (p, unitary) in &mix {
                u -= p;
                if u <= 0.0 {
                    kernels::apply_single(state, n, qubit, unitary);
                    return;
                }
            }
            let last = &mix.last().expect("non-empty mixture").1;
            kernels::apply_single(state, n, qubit, last);
            return;
        }
    }
    // General norm sampling.
    let mut branches: Vec<(f64, Vec<Complex64>)> = Vec::with_capacity(channel.len());
    let mut total = 0.0;
    for e in channel.operators() {
        let mut branch = state.clone();
        kernels::apply_single(&mut branch, n, qubit, e);
        let w = kernels::norm_sqr(&branch);
        total += w;
        branches.push((w, branch));
    }
    debug_assert!(
        (total - kernels::norm_sqr(state)).abs() < 1e-9,
        "CPTP channel should preserve total branch weight"
    );
    let mut u = rng.random_range(0.0..1.0) * total;
    for (w, branch) in branches.iter() {
        u -= w;
        if u <= 0.0 {
            let inv = 1.0 / w.sqrt();
            *state = branch.iter().map(|&z| z * inv).collect();
            return;
        }
    }
    let (w, branch) = branches.last().expect("non-empty channel");
    let inv = 1.0 / w.sqrt();
    *state = branch.iter().map(|&z| z * inv).collect();
}

/// Runs `samples` trajectories and aggregates the estimator.
///
/// With [`SamplingStrategy::MixedUnitaryFastPath`] the mixed-unitary
/// decompositions are computed **once per noise event** up front and
/// reused by every trajectory (they are state-independent), so the
/// fast path's per-sample cost is a single kernel application per
/// noise.
pub fn estimate(
    noisy: &NoisyCircuit,
    psi: &[Complex64],
    v: &[Complex64],
    samples: usize,
    strategy: SamplingStrategy,
    seed: u64,
) -> TrajectoryEstimate {
    assert!(samples > 0, "need at least one sample");
    let n = noisy.n_qubits();
    assert_eq!(psi.len(), 1usize << n, "input state length mismatch");
    assert_eq!(v.len(), 1usize << n, "test state length mismatch");
    let mut rng = StdRng::seed_from_u64(seed);

    // Precompute per-event mixtures for the fast path, aligned with
    // the order noise events appear in `elements()`.
    let mixtures: Vec<Option<Vec<(f64, Matrix)>>> = noisy
        .elements()
        .iter()
        .filter_map(|el| match el {
            qns_noise::Element::Noise(e) => Some(e),
            qns_noise::Element::Gate(_) => None,
        })
        .map(|e| {
            if strategy == SamplingStrategy::MixedUnitaryFastPath {
                mixed_unitary_decomposition(&e.kraus)
            } else {
                None
            }
        })
        .collect();

    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..samples {
        let mut state = psi.to_vec();
        let mut event_idx = 0usize;
        for el in noisy.elements() {
            match el {
                Element::Gate(op) => apply_operation(&mut state, n, op),
                Element::Noise(e) => {
                    match &mixtures[event_idx] {
                        Some(mix) => sample_from_mixture(&mut state, n, e.qubit, mix, &mut rng),
                        None => sample_noise(
                            &mut state,
                            n,
                            e.qubit,
                            &e.kraus,
                            SamplingStrategy::General,
                            &mut rng,
                        ),
                    }
                    event_idx += 1;
                }
            }
        }
        let x = qns_linalg::inner_product(v, &state).norm_sqr();
        sum += x;
        sum_sq += x * x;
    }
    let mean = sum / samples as f64;
    let var = (sum_sq / samples as f64 - mean * mean).max(0.0);
    let std_dev = var.sqrt();
    TrajectoryEstimate {
        mean,
        std_dev,
        std_error: std_dev / (samples as f64).sqrt(),
        samples,
    }
}

/// Samples one branch of a precomputed unitary mixture and applies it.
fn sample_from_mixture(
    state: &mut [Complex64],
    n: usize,
    qubit: usize,
    mix: &[(f64, Matrix)],
    rng: &mut StdRng,
) {
    let mut u = rng.random_range(0.0..1.0);
    for (p, unitary) in mix {
        u -= p;
        if u <= 0.0 {
            kernels::apply_single(state, n, qubit, unitary);
            return;
        }
    }
    let last = &mix.last().expect("non-empty mixture").1;
    kernels::apply_single(state, n, qubit, last);
}

/// Number of samples needed so that the mean of a `[0,1]`-bounded
/// estimator is within `target_error` of its expectation with
/// probability at least `confidence` (Hoeffding bound):
/// `r = ln(2/(1−confidence)) / (2·ε²)`.
///
/// This is the planner used when matching the trajectories method to a
/// requested accuracy (paper, Fig. 5 and Table III).
///
/// # Panics
///
/// Panics unless `0 < target_error` and `0 < confidence < 1`.
pub fn required_samples(target_error: f64, confidence: f64) -> usize {
    assert!(target_error > 0.0, "target error must be positive");
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0,1)"
    );
    let delta = 1.0 - confidence;
    ((2.0 / delta).ln() / (2.0 * target_error * target_error)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density;
    use crate::statevector::{ghz_state, zero_state};
    use qns_circuit::generators::ghz;
    use qns_noise::channels;

    #[test]
    fn noiseless_trajectory_is_deterministic() {
        let noisy = NoisyCircuit::noiseless(ghz(3));
        let psi = zero_state(3);
        let v = ghz_state(3);
        let mut rng = StdRng::seed_from_u64(0);
        let x = run_single(&noisy, &psi, &v, SamplingStrategy::General, &mut rng);
        assert!((x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimator_is_unbiased_vs_density() {
        let noisy = NoisyCircuit::inject_random(ghz(3), &channels::depolarizing(0.1), 3, 2);
        let psi = zero_state(3);
        let v = ghz_state(3);
        let exact = density::expectation(&noisy, &psi, &v);
        let est = estimate(&noisy, &psi, &v, 4000, SamplingStrategy::General, 1);
        assert!(
            (est.mean - exact).abs() < 5.0 * est.std_error.max(1e-3),
            "mean {} vs exact {} (σ̂ {})",
            est.mean,
            exact,
            est.std_error
        );
    }

    #[test]
    fn fast_path_matches_general_for_mixed_unitary() {
        let noisy = NoisyCircuit::inject_random(ghz(3), &channels::depolarizing(0.2), 4, 5);
        let psi = zero_state(3);
        let v = ghz_state(3);
        let exact = density::expectation(&noisy, &psi, &v);
        let fast = estimate(
            &noisy,
            &psi,
            &v,
            4000,
            SamplingStrategy::MixedUnitaryFastPath,
            7,
        );
        assert!(
            (fast.mean - exact).abs() < 5.0 * fast.std_error.max(1e-3),
            "fast-path mean {} vs exact {}",
            fast.mean,
            exact
        );
    }

    #[test]
    fn mixed_unitary_detection() {
        assert!(mixed_unitary_decomposition(&channels::depolarizing(0.1)).is_some());
        assert!(mixed_unitary_decomposition(&channels::bit_flip(0.3)).is_some());
        // Amplitude damping is not mixed-unitary.
        assert!(mixed_unitary_decomposition(&channels::amplitude_damping(0.3)).is_none());
    }

    #[test]
    fn mixed_unitary_probabilities_sum_to_one() {
        let mix = mixed_unitary_decomposition(&channels::depolarizing(0.25)).unwrap();
        let total: f64 = mix.iter().map(|(p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for (_, u) in &mix {
            assert!(u.is_unitary(1e-10));
        }
    }

    #[test]
    fn general_sampling_handles_amplitude_damping() {
        let noisy = NoisyCircuit::inject_random(ghz(3), &channels::amplitude_damping(0.15), 3, 9);
        let psi = zero_state(3);
        let v = ghz_state(3);
        let exact = density::expectation(&noisy, &psi, &v);
        let est = estimate(&noisy, &psi, &v, 4000, SamplingStrategy::General, 3);
        assert!(
            (est.mean - exact).abs() < 5.0 * est.std_error.max(1e-3),
            "mean {} vs exact {}",
            est.mean,
            exact
        );
    }

    #[test]
    fn error_shrinks_with_sample_count() {
        let noisy = NoisyCircuit::inject_random(ghz(3), &channels::depolarizing(0.3), 5, 4);
        let psi = zero_state(3);
        let v = ghz_state(3);
        let small = estimate(&noisy, &psi, &v, 100, SamplingStrategy::General, 11);
        let large = estimate(&noisy, &psi, &v, 10_000, SamplingStrategy::General, 11);
        assert!(large.std_error < small.std_error);
    }

    #[test]
    fn required_samples_scales_inverse_square() {
        let r1 = required_samples(1e-2, 0.99);
        let r2 = required_samples(1e-3, 0.99);
        let ratio = r2 as f64 / r1 as f64;
        assert!((ratio - 100.0).abs() / 100.0 < 0.01, "ratio {ratio}");
    }

    #[test]
    fn required_samples_reasonable_magnitude() {
        // ln(200)/2 ≈ 2.65 ⇒ about 2.65/ε².
        let r = required_samples(0.01, 0.99);
        assert!(r > 20_000 && r < 30_000, "r = {r}");
    }

    #[test]
    #[should_panic(expected = "target error must be positive")]
    fn zero_error_panics() {
        let _ = required_samples(0.0, 0.99);
    }
}
