//! Bit-twiddled gate kernels on flat complex buffers.
//!
//! A state over `n_bits` qubits is a buffer of length `2^n_bits`; bit
//! position 0 is the **most significant** bit of the index, matching
//! [`qns_circuit::Circuit::unitary`]. The density-matrix simulator
//! reuses these kernels on `2n`-bit buffers (row bits then column
//! bits).

use qns_linalg::{Complex64, Matrix};

/// Applies a 2×2 matrix to bit `bit` of an `n_bits`-qubit buffer,
/// in place.
///
/// # Panics
///
/// Panics if `m` is not 2×2, `bit ≥ n_bits`, or the buffer length is
/// not `2^n_bits`.
pub fn apply_single(state: &mut [Complex64], n_bits: usize, bit: usize, m: &Matrix) {
    assert_eq!((m.rows(), m.cols()), (2, 2), "kernel expects a 2×2 matrix");
    assert!(bit < n_bits, "bit out of range");
    assert_eq!(state.len(), 1usize << n_bits, "buffer length mismatch");
    let shift = n_bits - 1 - bit;
    let mask = 1usize << shift;
    let m00 = m[(0, 0)];
    let m01 = m[(0, 1)];
    let m10 = m[(1, 0)];
    let m11 = m[(1, 1)];
    for base in 0..state.len() {
        if base & mask != 0 {
            continue;
        }
        let i0 = base;
        let i1 = base | mask;
        let a0 = state[i0];
        let a1 = state[i1];
        state[i0] = m00 * a0 + m01 * a1;
        state[i1] = m10 * a0 + m11 * a1;
    }
}

/// Applies a 4×4 matrix to bits `(bit0, bit1)` of an `n_bits`-qubit
/// buffer, in place. `bit0` indexes the more significant bit of the
/// 4×4 matrix's basis, matching [`qns_circuit::Gate::matrix`].
///
/// # Panics
///
/// Panics if `m` is not 4×4, the bits coincide or exceed `n_bits`, or
/// the buffer length is not `2^n_bits`.
pub fn apply_double(state: &mut [Complex64], n_bits: usize, bit0: usize, bit1: usize, m: &Matrix) {
    assert_eq!((m.rows(), m.cols()), (4, 4), "kernel expects a 4×4 matrix");
    assert!(bit0 < n_bits && bit1 < n_bits, "bit out of range");
    assert_ne!(bit0, bit1, "bits must differ");
    assert_eq!(state.len(), 1usize << n_bits, "buffer length mismatch");
    let s0 = n_bits - 1 - bit0;
    let s1 = n_bits - 1 - bit1;
    let m0 = 1usize << s0;
    let m1 = 1usize << s1;
    for base in 0..state.len() {
        if base & m0 != 0 || base & m1 != 0 {
            continue;
        }
        let idx = [base, base | m1, base | m0, base | m0 | m1];
        let amps = [state[idx[0]], state[idx[1]], state[idx[2]], state[idx[3]]];
        for (r, &out_i) in idx.iter().enumerate() {
            let mut acc = Complex64::ZERO;
            for (c, &a) in amps.iter().enumerate() {
                acc += m[(r, c)] * a;
            }
            state[out_i] = acc;
        }
    }
}

/// Squared norm of a buffer.
pub fn norm_sqr(state: &[Complex64]) -> f64 {
    state.iter().map(|z| z.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::{Circuit, Gate};
    use qns_linalg::cr;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_state(rng: &mut StdRng, n: usize) -> Vec<Complex64> {
        let v: Vec<Complex64> = (0..1usize << n)
            .map(|_| qns_linalg::c64(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)))
            .collect();
        qns_linalg::normalize(&v)
    }

    #[test]
    fn single_kernel_matches_full_matrix() {
        let mut rng = StdRng::seed_from_u64(2);
        for bit in 0..3 {
            let state = random_state(&mut rng, 3);
            let mut fast = state.clone();
            apply_single(&mut fast, 3, bit, &Gate::H.matrix());
            let mut c = Circuit::new(3);
            c.h(bit);
            let slow = c.unitary().matvec(&state);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(a.approx_eq(*b, 1e-12), "bit {bit}");
            }
        }
    }

    #[test]
    fn double_kernel_matches_full_matrix() {
        let mut rng = StdRng::seed_from_u64(3);
        for (b0, b1) in [(0, 1), (1, 0), (0, 2), (2, 1)] {
            let state = random_state(&mut rng, 3);
            let mut fast = state.clone();
            apply_double(&mut fast, 3, b0, b1, &Gate::CX.matrix());
            let mut c = Circuit::new(3);
            c.cx(b0, b1);
            let slow = c.unitary().matvec(&state);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(a.approx_eq(*b, 1e-12), "bits ({b0},{b1})");
            }
        }
    }

    #[test]
    fn kernels_preserve_norm_for_unitaries() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut state = random_state(&mut rng, 4);
        apply_single(&mut state, 4, 2, &Gate::SqrtW.matrix());
        apply_double(&mut state, 4, 1, 3, &Gate::FSim(0.3, 0.2).matrix());
        assert!((norm_sqr(&state) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_unitary_kernel_shrinks_norm() {
        // Amplitude-damping Kraus E1 has operator norm < 1.
        let e1 = Matrix::from_rows(&[vec![cr(0.0), cr(0.5)], vec![cr(0.0), cr(0.0)]]);
        let mut state = vec![cr(0.0), cr(1.0)]; // |1⟩
        apply_single(&mut state, 1, 0, &e1);
        assert!((norm_sqr(&state) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn x_kernel_flips_expected_bit() {
        let mut state = vec![Complex64::ZERO; 8];
        state[0] = cr(1.0); // |000⟩
        apply_single(&mut state, 3, 1, &Gate::X.matrix());
        // bit 1 is the middle bit → index 0b010 = 2
        assert!(state[2].approx_eq(cr(1.0), 1e-14));
    }
}
