#![warn(missing_docs)]
//! Reference simulators for noisy quantum circuits.
//!
//! Three of the paper's baselines live here:
//!
//! * [`statevector`] — dense noiseless statevector simulation with
//!   bit-twiddled gate kernels (the building block for everything
//!   else).
//! * [`density`] — the **MM-based method**: exact density-matrix
//!   evolution, `O(4^n)` memory.
//! * [`trajectory`] — the **quantum trajectories method** [Isakov et
//!   al.]: Monte-Carlo sampling of Kraus operators on statevectors,
//!   with a sample-count planner.
//!
//! The common task solved by all of them is the paper's Problem 1:
//! estimate `⟨v| E_N(|ψ⟩⟨ψ|) |v⟩`.
//!
//! # Example
//!
//! ```
//! use qns_circuit::generators::ghz;
//! use qns_noise::{channels, NoisyCircuit};
//! use qns_sim::statevector::basis_state;
//!
//! let noisy = NoisyCircuit::inject_random(ghz(3), &channels::depolarizing(1e-3), 2, 7);
//! let psi = basis_state(3, 0);
//! let v = qns_sim::statevector::ghz_state(3);
//! let fidelity = qns_sim::density::expectation(&noisy, &psi, &v);
//! assert!(fidelity > 0.9 && fidelity <= 1.0 + 1e-9);
//! ```

pub mod density;
pub mod kernels;
pub mod measure;
pub mod statevector;
pub mod trajectory;
