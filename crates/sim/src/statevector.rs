//! Dense noiseless statevector simulation.

use crate::kernels;
use qns_circuit::{Circuit, Operation};
use qns_linalg::{cr, Complex64};

/// Returns the computational basis state `|index⟩` on `n` qubits.
///
/// # Panics
///
/// Panics if `index ≥ 2^n` or `n` is larger than 30 (guard).
pub fn basis_state(n: usize, index: usize) -> Vec<Complex64> {
    assert!(n <= 30, "statevector too large");
    let dim = 1usize << n;
    assert!(index < dim, "basis index out of range");
    let mut v = vec![Complex64::ZERO; dim];
    v[index] = Complex64::ONE;
    v
}

/// The all-zeros state `|0…0⟩`.
pub fn zero_state(n: usize) -> Vec<Complex64> {
    basis_state(n, 0)
}

/// The GHZ state `(|0…0⟩ + |1…1⟩)/√2`.
pub fn ghz_state(n: usize) -> Vec<Complex64> {
    let mut v = zero_state(n);
    let inv = std::f64::consts::FRAC_1_SQRT_2;
    v[0] = cr(inv);
    let last = v.len() - 1;
    v[last] = cr(inv);
    v
}

/// Applies one operation to a statevector in place.
///
/// # Panics
///
/// Panics if the buffer length does not match the implied qubit count
/// or qubits are out of range.
pub fn apply_operation(state: &mut [Complex64], n: usize, op: &Operation) {
    match op.qubits.len() {
        1 => kernels::apply_single(state, n, op.qubits[0], &op.gate.matrix()),
        2 => kernels::apply_double(state, n, op.qubits[0], op.qubits[1], &op.gate.matrix()),
        _ => unreachable!("gates are 1- or 2-qubit"),
    }
}

/// Runs a noiseless circuit on an initial state and returns the final
/// statevector.
///
/// # Panics
///
/// Panics if `initial.len() != 2^circuit.n_qubits()`.
pub fn run(circuit: &Circuit, initial: &[Complex64]) -> Vec<Complex64> {
    let n = circuit.n_qubits();
    assert_eq!(initial.len(), 1usize << n, "initial state length mismatch");
    let mut state = initial.to_vec();
    for op in circuit.operations() {
        apply_operation(&mut state, n, op);
    }
    state
}

/// The amplitude `⟨v|C|ψ⟩` of a noiseless circuit.
pub fn amplitude(circuit: &Circuit, psi: &[Complex64], v: &[Complex64]) -> Complex64 {
    let out = run(circuit, psi);
    qns_linalg::inner_product(v, &out)
}

/// The output-state overlap `|⟨v|C|ψ⟩|²` of a noiseless circuit.
pub fn overlap_probability(circuit: &Circuit, psi: &[Complex64], v: &[Complex64]) -> f64 {
    amplitude(circuit, psi, v).norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qns_circuit::generators::{ghz, qft};
    use qns_circuit::Circuit;

    #[test]
    fn run_matches_unitary_matvec() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(2, 0.4).cz(1, 2).ry(0, 0.9);
        let psi = basis_state(3, 5);
        let fast = run(&c, &psi);
        let slow = c.unitary().matvec(&psi);
        for (a, b) in fast.iter().zip(&slow) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn ghz_circuit_prepares_ghz_state() {
        let out = run(&ghz(4), &zero_state(4));
        let expect = ghz_state(4);
        for (a, b) in out.iter().zip(&expect) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn amplitude_of_identity_is_overlap() {
        let c = Circuit::new(2); // empty circuit... needs ≥1 gate? none needed
        let psi = basis_state(2, 1);
        let amp = amplitude(&c, &psi, &psi);
        assert!(amp.approx_eq(Complex64::ONE, 1e-14));
    }

    #[test]
    fn qft_amplitudes_uniform() {
        let p = overlap_probability(&qft(4), &zero_state(4), &basis_state(4, 7));
        assert!((p - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn norm_preserved_through_long_circuit() {
        let c = qns_circuit::generators::inst_grid(2, 3, 12, 3);
        let out = run(&c, &zero_state(6));
        assert!((crate::kernels::norm_sqr(&out) - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_initial_length_panics() {
        let c = Circuit::new(2);
        let _ = run(&c, &basis_state(3, 0));
    }
}
